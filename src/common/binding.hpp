#pragma once

/// \file binding.hpp
/// Generic text binding of plain option structs: one `FieldBinder<Obj>`
/// per field (a dotted key, a strict text setter, a canonical-text getter)
/// plus table-level apply/serialize/keys helpers. The SimulationOptions
/// binding (core/options.cpp) and the StructureParams binding
/// (device/presets.cpp) are both instances of this framework, so their
/// key lookup, diagnostics ("unknown <kind> \"x\"; known keys: ..."), and
/// round-trip guarantees cannot diverge.
///
/// Values are formatted round-trippably (doubles as "%.17g"); setters
/// throw std::runtime_error naming the expected type and offending text
/// (common/strings.hpp), which `set_field` prefixes with the kind + key.

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.hpp"

namespace qtx::binding {

/// One bindable field of \p Obj: dotted key, text setter, canonical getter.
template <class Obj>
struct FieldBinder {
  const char* key;  ///< dotted key, e.g. "contacts.mu_left"
  std::function<void(Obj&, const std::string&)> set;      ///< strict parser
  std::function<std::string(const Obj&)> get;             ///< canonical text
  /// Sticky-default marker: when non-empty, `serialize_fields` omits the
  /// field while its canonical value equals this text. Fields added to a
  /// table *after* output formats shipped use this so default-configuration
  /// provenance stays byte-identical (append-only provenance policy);
  /// applying the emitted pairs to a default-constructed Obj still
  /// reproduces the serialized state exactly, because every omitted field
  /// holds its default.
  std::string omit_when = {};
};

/// Binder for a flat double field ("%.17g" canonical form).
template <class Obj>
FieldBinder<Obj> bind_double(const char* key, double Obj::*field) {
  return {key,
          [field](Obj& o, const std::string& v) {
            o.*field = strings::parse_double(v);
          },
          [field](const Obj& o) { return strings::format_double(o.*field); }};
}

/// Binder for a flat int field (range-checked 32-bit parse).
template <class Obj>
FieldBinder<Obj> bind_int(const char* key, int Obj::*field) {
  return {key,
          [field](Obj& o, const std::string& v) {
            o.*field = strings::parse_int32(v);
          },
          [field](const Obj& o) { return std::to_string(o.*field); }};
}

/// Binder for a flat bool field ("true"/"false" canonical form).
template <class Obj>
FieldBinder<Obj> bind_bool(const char* key, bool Obj::*field) {
  return {key,
          [field](Obj& o, const std::string& v) {
            o.*field = strings::parse_bool(v);
          },
          [field](const Obj& o) {
            return std::string((o.*field) ? "true" : "false");
          }};
}

/// Binder for a flat string field (trimmed verbatim).
template <class Obj>
FieldBinder<Obj> bind_string(const char* key, std::string Obj::*field) {
  return {key,
          [field](Obj& o, const std::string& v) {
            o.*field = strings::trim(v);
          },
          [field](const Obj& o) { return o.*field; }};
}

/// Set the field addressed by \p key from text. \p kind labels diagnostics
/// ("option key", "device parameter"): unknown keys throw
/// "unknown <kind> \"<key>\"; known keys: ...", malformed values throw
/// "<kind> \"<key>\": <expected-type message>".
template <class Obj>
void set_field(const std::vector<FieldBinder<Obj>>& table, const char* kind,
               Obj& obj, const std::string& key, const std::string& value) {
  for (const FieldBinder<Obj>& b : table) {
    if (key == b.key) {
      try {
        b.set(obj, value);
      } catch (const std::runtime_error& e) {
        std::ostringstream os;
        os << kind << " \"" << key << "\": " << e.what();
        throw std::runtime_error(os.str());
      }
      return;
    }
  }
  std::ostringstream os;
  os << "unknown " << kind << " \"" << key << "\"; known keys: ";
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (i) os << ", ";
    os << table[i].key;
  }
  throw std::runtime_error(os.str());
}

/// Every field as {key, canonical value}, in table order — minus
/// sticky-default fields currently holding their `omit_when` value (see
/// FieldBinder). Applying the pairs to a default-constructed Obj reproduces
/// \p obj exactly.
template <class Obj>
std::vector<std::pair<std::string, std::string>> serialize_fields(
    const std::vector<FieldBinder<Obj>>& table, const Obj& obj) {
  std::vector<std::pair<std::string, std::string>> kvs;
  kvs.reserve(table.size());
  for (const FieldBinder<Obj>& b : table) {
    std::string value = b.get(obj);
    if (!b.omit_when.empty() && value == b.omit_when) continue;
    kvs.emplace_back(b.key, std::move(value));
  }
  return kvs;
}

/// All keys of \p table, in serialization order.
template <class Obj>
std::vector<std::string> field_keys(
    const std::vector<FieldBinder<Obj>>& table) {
  std::vector<std::string> keys;
  keys.reserve(table.size());
  for (const FieldBinder<Obj>& b : table) keys.push_back(b.key);
  return keys;
}

}  // namespace qtx::binding
