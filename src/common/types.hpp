#pragma once

/// \file types.hpp
/// Fundamental scalar types and physical constants shared by all QuaTrEx-CPP
/// modules. All physics is done in natural units (hbar = e = 1) with energies
/// in electron-volts and lengths in nanometers, matching the conventions laid
/// out in DESIGN.md.

#include <cmath>
#include <complex>
#include <cstdint>

namespace qtx {

/// Double-precision complex scalar used by every physical quantity
/// (Green's functions, self-energies, polarization, screened interaction).
using cplx = std::complex<double>;

using std::int64_t;

inline constexpr double kPi = 3.14159265358979323846;

/// i (imaginary unit) as a named constant to keep formulas readable.
inline constexpr cplx kI{0.0, 1.0};

/// Boltzmann constant in eV/K.
inline constexpr double kBoltzmannEvPerK = 8.617333262e-5;

/// Room temperature in Kelvin, the default contact temperature.
inline constexpr double kRoomTemperatureK = 300.0;

/// Fermi-Dirac occupation at energy \p e for chemical potential \p mu and
/// temperature \p temperature_k (Kelvin). Numerically safe for large
/// arguments in either direction.
inline double fermi_dirac(double e, double mu, double temperature_k) {
  const double kt = kBoltzmannEvPerK * temperature_k;
  const double x = (e - mu) / kt;
  if (x > 40.0) return 0.0;
  if (x < -40.0) return 1.0;
  return 1.0 / (1.0 + std::exp(x));
}

}  // namespace qtx
