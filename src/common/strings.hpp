#pragma once

/// \file strings.hpp
/// Small string utilities shared by the option/scenario text bindings
/// (core/options.hpp, device/presets.hpp, io/scenario_parser.hpp): trimming,
/// tokenizing, round-trippable number formatting, and strict scalar parsers
/// that throw std::runtime_error with the offending text on malformed input.
///
/// Doubles are formatted with "%.17g", which round-trips every IEEE-754
/// binary64 value through strtod bit-identically — the property the
/// parse -> serialize -> parse identity of scenario files rests on.

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace qtx::strings {

/// Strip leading and trailing ASCII whitespace.
inline std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Split on whitespace and/or commas; empty tokens are dropped, so
/// "1, 2 3" and "1 2 3" tokenize identically.
inline std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!current.empty()) tokens.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

/// Round-trippable double formatting ("%.17g"): strtod(format_double(x))
/// reproduces x bit-identically for every finite binary64 value.
inline std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

[[noreturn]] inline void parse_error(const char* what,
                                     const std::string& text) {
  std::ostringstream os;
  os << "expected " << what << ", got \"" << text << "\"";
  throw std::runtime_error(os.str());
}

/// Strict double parser: the whole (trimmed) token must be consumed, and
/// overflow to +-inf is rejected ("1e999" is a typo, not a value).
/// Gradual underflow to subnormals is accepted — serialized tiny values
/// must keep round-tripping.
inline double parse_double(const std::string& s) {
  const std::string t = trim(s);
  if (t.empty()) parse_error("a number", s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) parse_error("a number", s);
  if (!std::isfinite(v))
    parse_error("a finite number (inf/nan and overflowing values are "
                "rejected)",
                s);
  return v;
}

/// Strict integer parser (base 10; the whole token must be consumed;
/// out-of-range values are rejected, never clamped).
inline long long parse_int(const std::string& s) {
  const std::string t = trim(s);
  if (t.empty()) parse_error("an integer", s);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(t.c_str(), &end, 10);
  if (end != t.c_str() + t.size()) parse_error("an integer", s);
  if (errno == ERANGE) parse_error("an integer in 64-bit range", s);
  return v;
}

/// Strict 32-bit integer parser: parse_int plus an int range check, so
/// option fields of type int never truncate silently.
inline int parse_int32(const std::string& s) {
  const long long v = parse_int(s);
  if (v < INT_MIN || v > INT_MAX)
    parse_error("an integer in 32-bit range", s);
  return static_cast<int>(v);
}

/// Strict unsigned 64-bit parser (for RNG seeds); rejects overflow.
inline unsigned long long parse_uint64(const std::string& s) {
  const std::string t = trim(s);
  if (t.empty() || t[0] == '-') parse_error("an unsigned integer", s);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
  if (end != t.c_str() + t.size()) parse_error("an unsigned integer", s);
  if (errno == ERANGE) parse_error("an unsigned integer in 64-bit range", s);
  return v;
}

/// Boolean parser: true/false, 1/0, yes/no, on/off (case-sensitive,
/// lowercase — the canonical serialization emits "true"/"false").
inline bool parse_bool(const std::string& s) {
  const std::string t = trim(s);
  if (t == "true" || t == "1" || t == "yes" || t == "on") return true;
  if (t == "false" || t == "0" || t == "no" || t == "off") return false;
  parse_error("a boolean (true/false, 1/0, yes/no, on/off)", s);
}

/// Parse a whitespace/comma-separated list of doubles ("" -> empty).
inline std::vector<double> parse_double_list(const std::string& s) {
  std::vector<double> values;
  for (const std::string& tok : split_list(s))
    values.push_back(parse_double(tok));
  return values;
}

/// Serialize a list of doubles, space-separated, round-trippable.
inline std::string format_double_list(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ' ';
    out += format_double(values[i]);
  }
  return out;
}

/// Serialize a list of words, space-separated.
inline std::string join(const std::vector<std::string>& tokens) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i) out += ' ';
    out += tokens[i];
  }
  return out;
}

}  // namespace qtx::strings
