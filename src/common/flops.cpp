#include "common/flops.hpp"

#include <mutex>
#include <vector>

namespace qtx {
namespace {

/// Per-thread counter block, registered in a global list so totals can be
/// aggregated across threads.
struct ThreadCounters {
  std::map<std::string, std::int64_t> by_phase;
  std::string current_phase = "unattributed";
};

std::mutex g_registry_mutex;
std::vector<ThreadCounters*>& registry() {
  static std::vector<ThreadCounters*> r;
  return r;
}

ThreadCounters& local() {
  thread_local ThreadCounters* tc = [] {
    auto* p = new ThreadCounters();  // lives for process lifetime
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    registry().push_back(p);
    return p;
  }();
  return *tc;
}

}  // namespace

void FlopLedger::add(std::int64_t flops) {
  auto& tc = local();
  tc.by_phase[tc.current_phase] += flops;
}

void FlopLedger::begin_phase(const std::string& name) {
  local().current_phase = name;
}

std::int64_t FlopLedger::total() {
  std::int64_t sum = 0;
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (const auto* tc : registry())
    for (const auto& [_, v] : tc->by_phase) sum += v;
  return sum;
}

std::map<std::string, std::int64_t> FlopLedger::by_phase() {
  std::map<std::string, std::int64_t> out;
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (const auto* tc : registry())
    for (const auto& [k, v] : tc->by_phase) out[k] += v;
  return out;
}

void FlopLedger::reset() {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (auto* tc : registry()) tc->by_phase.clear();
}

FlopPhase::FlopPhase(const std::string& name) {
  previous_ = local().current_phase;
  FlopLedger::begin_phase(name);
}

FlopPhase::~FlopPhase() { FlopLedger::begin_phase(previous_); }

}  // namespace qtx
