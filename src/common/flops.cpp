#include "common/flops.hpp"

#include <mutex>
#include <vector>

namespace qtx {
namespace {

/// Per-thread counter block, registered in a global list so totals can be
/// aggregated across threads. The per-block mutex makes the counters safely
/// publishable to observer threads polling mid-run: the owner thread takes
/// it uncontended in add() (a few nanoseconds — no hot-path contention),
/// observers take the registry mutex plus each block's mutex in turn.
struct ThreadCounters {
  std::mutex mutex;
  std::map<std::string, std::int64_t> by_phase;
  std::string current_phase = "unattributed";
};

// Both the registry and its mutex are heap-allocated and never destroyed:
// the per-thread blocks must stay reachable through them at process exit
// (otherwise static destruction frees the vector's buffer, orphaning the
// blocks — LeakSanitizer reports them — and any thread outliving static
// destruction would push into a destroyed vector).
std::mutex& registry_mutex() {
  static auto* m = new std::mutex();
  return *m;
}
std::vector<ThreadCounters*>& registry() {
  static auto* r = new std::vector<ThreadCounters*>();
  return *r;
}

ThreadCounters& local() {
  thread_local ThreadCounters* tc = [] {
    auto* p = new ThreadCounters();  // lives for process lifetime
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry().push_back(p);
    return p;
  }();
  return *tc;
}

}  // namespace

void FlopLedger::add(std::int64_t flops) {
  auto& tc = local();
  std::lock_guard<std::mutex> lock(tc.mutex);
  tc.by_phase[tc.current_phase] += flops;
}

void FlopLedger::begin_phase(const std::string& name) {
  auto& tc = local();
  std::lock_guard<std::mutex> lock(tc.mutex);
  tc.current_phase = name;
}

std::int64_t FlopLedger::total() {
  std::int64_t sum = 0;
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (auto* tc : registry()) {
    std::lock_guard<std::mutex> block(tc->mutex);
    for (const auto& [_, v] : tc->by_phase) sum += v;
  }
  return sum;
}

std::map<std::string, std::int64_t> FlopLedger::by_phase() {
  std::map<std::string, std::int64_t> out;
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (auto* tc : registry()) {
    std::lock_guard<std::mutex> block(tc->mutex);
    for (const auto& [k, v] : tc->by_phase) out[k] += v;
  }
  return out;
}

void FlopLedger::reset() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (auto* tc : registry()) {
    std::lock_guard<std::mutex> block(tc->mutex);
    tc->by_phase.clear();
  }
}

FlopPhase::FlopPhase(const std::string& name) {
  {
    auto& tc = local();
    std::lock_guard<std::mutex> lock(tc.mutex);
    previous_ = tc.current_phase;
  }
  FlopLedger::begin_phase(name);
}

FlopPhase::~FlopPhase() { FlopLedger::begin_phase(previous_); }

}  // namespace qtx
