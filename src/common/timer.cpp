#include "common/timer.hpp"

#include <mutex>
#include <vector>

namespace qtx {
namespace {

/// Per-thread timer block, mirroring FlopLedger's counter blocks: the
/// owning thread takes its own (uncontended) mutex in add() — no global
/// contention when pipeline workers time kernels concurrently — while
/// observer threads polling seconds()/all() mid-run take the registry
/// mutex plus each block's mutex in turn, so no read is torn.
struct ThreadTimers {
  std::mutex mutex;
  std::map<std::string, double> by_name;
};

// Registry and mutex are heap-allocated immortals: the per-thread blocks
// must stay reachable at process exit (static destruction would orphan
// them — LeakSanitizer reports — and any thread outliving static
// destruction would touch a destroyed vector).
std::mutex& registry_mutex() {
  static auto* m = new std::mutex();
  return *m;
}
std::vector<ThreadTimers*>& registry() {
  static auto* r = new std::vector<ThreadTimers*>();
  return *r;
}

ThreadTimers& local() {
  thread_local ThreadTimers* tt = [] {
    auto* p = new ThreadTimers();  // lives for process lifetime
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry().push_back(p);
    return p;
  }();
  return *tt;
}

}  // namespace

void TimerRegistry::add(const std::string& name, double seconds) {
  auto& tt = local();
  std::lock_guard<std::mutex> lock(tt.mutex);
  tt.by_name[name] += seconds;
}

double TimerRegistry::seconds(const std::string& name) {
  double sum = 0.0;
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (auto* tt : registry()) {
    std::lock_guard<std::mutex> block(tt->mutex);
    const auto it = tt->by_name.find(name);
    if (it != tt->by_name.end()) sum += it->second;
  }
  return sum;
}

std::map<std::string, double> TimerRegistry::all() {
  std::map<std::string, double> out;
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (auto* tt : registry()) {
    std::lock_guard<std::mutex> block(tt->mutex);
    for (const auto& [k, v] : tt->by_name) out[k] += v;
  }
  return out;
}

void TimerRegistry::reset() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (auto* tt : registry()) {
    std::lock_guard<std::mutex> block(tt->mutex);
    tt->by_name.clear();
  }
}

}  // namespace qtx
