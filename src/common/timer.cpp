#include "common/timer.hpp"

#include <mutex>

namespace qtx {
namespace {

std::mutex g_mutex;
std::map<std::string, double>& timers() {
  static std::map<std::string, double> t;
  return t;
}

}  // namespace

void TimerRegistry::add(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(g_mutex);
  timers()[name] += seconds;
}

double TimerRegistry::seconds(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = timers().find(name);
  return it == timers().end() ? 0.0 : it->second;
}

std::map<std::string, double> TimerRegistry::all() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return timers();
}

void TimerRegistry::reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  timers().clear();
}

}  // namespace qtx
