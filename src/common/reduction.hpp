#pragma once

/// \file reduction.hpp
/// Deterministic scalar reductions shared by every layer that folds
/// per-energy partials (the accel mixers, the core energy pipeline).

#include <vector>

#include "common/types.hpp"

namespace qtx {

/// Deterministic ordered reduction: folds the partials in index order,
/// independent of the schedule that produced them, so the sum is
/// bit-stable across thread counts and batch layouts.
inline double ordered_sum(const std::vector<double>& partials) {
  double sum = 0.0;
  for (const double p : partials) sum += p;
  return sum;
}

/// Complex overload: folds real and imaginary parts in index order.
inline cplx ordered_sum(const std::vector<cplx>& partials) {
  cplx sum = 0.0;
  for (const cplx& p : partials) sum += p;
  return sum;
}

/// Folds only the real parts of \p partials in index order (the rank-wise
/// scalar all-reduce in par::Comm ships scalars as complex payloads).
inline double ordered_sum_real(const std::vector<cplx>& partials) {
  double sum = 0.0;
  for (const cplx& p : partials) sum += p.real();
  return sum;
}

}  // namespace qtx
