#pragma once

/// \file reduction.hpp
/// Deterministic scalar reductions shared by every layer that folds
/// per-energy partials (the accel mixers, the core energy pipeline).

#include <vector>

namespace qtx {

/// Deterministic ordered reduction: folds the partials in index order,
/// independent of the schedule that produced them, so the sum is
/// bit-stable across thread counts and batch layouts.
inline double ordered_sum(const std::vector<double>& partials) {
  double sum = 0.0;
  for (const double p : partials) sum += p;
  return sum;
}

}  // namespace qtx
