#pragma once

/// \file check.hpp
/// Lightweight precondition checking. QTX_CHECK is always on (cheap compared
/// to any O(n^3) kernel it guards); failures throw std::runtime_error so
/// callers and tests can observe them.

#include <sstream>
#include <stdexcept>
#include <string>

namespace qtx::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "QTX_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::runtime_error(os.str());
}

}  // namespace qtx::detail

#define QTX_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond))                                                     \
      ::qtx::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define QTX_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream qtx_os_;                                    \
      qtx_os_ << msg;                                                \
      ::qtx::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                  qtx_os_.str());                    \
    }                                                                \
  } while (0)
