#pragma once

/// \file rng.hpp
/// Deterministic random number helpers. Tests and benchmarks seed explicitly
/// so every run is reproducible.

#include <cstdint>
#include <random>

#include "common/types.hpp"

namespace qtx {

/// Mersenne-Twister wrapper producing doubles and complex doubles in [-1,1].
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  double uniform() { return dist_(gen_); }

  cplx complex_uniform() { return {dist_(gen_), dist_(gen_)}; }

  /// Standard normal variate.
  double normal() { return normal_(gen_); }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> dist_{-1.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace qtx
