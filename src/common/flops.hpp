#pragma once

/// \file flops.hpp
/// FLOP ledger: the reproduction's stand-in for rocprof/NCU workload
/// measurements (paper §6.3). Every linear-algebra and FFT kernel reports the
/// double-precision operation count it executed, tagged with a kernel
/// category. The SCBA driver opens named phases ("G: OBC", "W: RGF", ...)
/// so benchmarks can print the same per-kernel workload rows as Table 4.
///
/// Counters are thread-local and aggregated on demand, so OpenMP-style
/// threaded kernels and the thread-backed communicator ranks can record
/// concurrently without contention on the hot path: add() takes only the
/// calling thread's own (uncontended) block mutex, which also makes the
/// counters safe for observer threads to poll mid-run (total() / by_phase()
/// lock each block in turn — no torn reads).

#include <cstdint>
#include <map>
#include <string>

namespace qtx {

/// Accumulates FP64 operation counts per named phase.
class FlopLedger {
 public:
  /// Add \p flops to the currently open phase of the calling thread.
  static void add(std::int64_t flops);

  /// Open a phase for the calling thread; subsequent add() calls accrue to
  /// it. Phases do not nest — begin_phase replaces the previous phase.
  static void begin_phase(const std::string& name);

  /// Total FP64 operations across all threads and phases.
  static std::int64_t total();

  /// Per-phase totals across all threads.
  static std::map<std::string, std::int64_t> by_phase();

  /// Reset all counters on all threads.
  static void reset();
};

/// RAII helper: opens \p name on construction, restores the previous phase on
/// destruction. Used by the SCBA driver around each kernel.
class FlopPhase {
 public:
  explicit FlopPhase(const std::string& name);
  ~FlopPhase();
  FlopPhase(const FlopPhase&) = delete;
  FlopPhase& operator=(const FlopPhase&) = delete;

 private:
  std::string previous_;
};

/// FLOP-count formulas for complex FP64 kernels. One complex multiply-add is
/// counted as 8 real operations (4 mul + 4 add), matching how vendor
/// profilers report complex GEMM.
namespace flop_count {

inline std::int64_t gemm(std::int64_t m, std::int64_t n, std::int64_t k) {
  return 8 * m * n * k;
}
inline std::int64_t lu(std::int64_t n) { return 8 * n * n * n / 3; }
inline std::int64_t lu_solve(std::int64_t n, std::int64_t nrhs) {
  return 8 * n * n * nrhs;
}
inline std::int64_t inverse(std::int64_t n) {
  return lu(n) + lu_solve(n, n);
}
inline std::int64_t fft(std::int64_t n) {
  // ~5 n log2 n real ops for a complex FFT.
  std::int64_t log2n = 0;
  for (std::int64_t v = 1; v < n; v *= 2) ++log2n;
  return 5 * n * log2n;
}
inline std::int64_t axpy(std::int64_t n) { return 8 * n; }

}  // namespace flop_count

}  // namespace qtx
