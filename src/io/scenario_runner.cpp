#include "io/scenario_runner.hpp"

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <utility>

#include "common/strings.hpp"
#include "core/perf_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qtx::io {
namespace {

void ensure_directory(const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    throw ScenarioError("cannot create output directory \"" + directory +
                        "\": " + ec.message());
  }
}

/// Test-only fault injection for ranked workers (see run_scenario_ranked's
/// header docs): fail the calling process the way QTX_RANKED_FAIL_MODE
/// asks. Never returns to the simulation.
[[noreturn]] void inject_ranked_fault(const std::string& mode) {
  if (mode == "throw") {
    throw ScenarioError("injected fault (QTX_RANKED_FAIL_MODE=throw)");
  }
  if (mode == "kill") ::raise(SIGKILL);  // does not return
  if (mode == "hang") {
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(60));
  }
  ::_exit(7);  // "exit" (the default mode): die with a nonzero status
}

}  // namespace

device::Structure make_structure(const Scenario& s) {
  return device::Structure(s.device);
}

core::SimulationOptions resolved_solver_options(
    const Scenario& s, const device::Structure& structure) {
  core::SimulationOptions opt = s.solver;
  if (!s.has_mu_spec) return opt;
  double base = 0.0;
  if (s.mu_reference != "absolute") {
    const device::Structure::GapInfo gap = structure.band_gap();
    if (s.mu_reference == "midgap") {
      base = gap.midgap();
    } else if (s.mu_reference == "valence-max") {
      base = gap.valence_max;
    } else {  // "conduction-min" (the parser admits nothing else)
      base = gap.conduction_min;
    }
  }
  opt.contacts.mu_left = base + s.mu_left;
  opt.contacts.mu_right = base + s.mu_right;
  return opt;
}

RunOutcome run_scenario(const Scenario& s,
                        const core::StageRegistry& registry,
                        const ProgressFn& progress,
                        std::shared_ptr<core::EnergyPipeline> pipeline,
                        par::Comm* comm) {
  const device::Structure structure = make_structure(s);
  RunOutcome out;
  out.resolved = resolved_solver_options(s, structure);
  core::Simulation sim(structure, out.resolved, registry,
                       std::move(pipeline));
  if (comm != nullptr) sim.distribute_over(*comm);
  if (progress) sim.on_iteration(progress);
  out.results.result = sim.run();

  const core::EnergyGrid& grid = out.resolved.grid;
  out.results.energies.resize(grid.n);
  for (int e = 0; e < grid.n; ++e)
    out.results.energies[e] = grid.energy(e);
  out.results.transmission = core::transmission(sim);
  out.results.dos = core::total_dos(sim);
  out.results.density = core::electron_density(sim);
  out.results.current_left = core::spectral_current_left(sim);
  out.results.current_right = core::spectral_current_right(sim);
  out.results.terminal_left = core::terminal_current_left(sim);
  out.results.terminal_right = core::terminal_current_right(sim);
  // Score the kernels against the measured (process-cached) host peak so
  // results.json carries achieved GFLOP/s vs peak for every run.
  out.results.host_peak_gflops = core::measure_host_peak().fma_gflops;
  if (comm != nullptr) {
    out.results.comm_ranks = comm->size();
    out.results.comm_backend = out.resolved.resolved_comm_backend();
    // World-total payload bytes — a collective, so every rank must reach
    // this point (they all do: the comm path above is rank-uniform).
    out.results.comm_bytes_sent =
        comm->allreduce_sum(static_cast<double>(comm->bytes_sent()));
  }

  // Hand the engine out for reuse: the local Simulation dies at return, so
  // this is the shared_pipeline() ownership transfer, not aliasing.
  out.pipeline = sim.shared_pipeline();

  // Publish run-level counters into the process metrics registry (the
  // snapshot `qtx run --metrics` and the serve stats frame render). Gauges
  // reflect the most recent run; per-phase time and flops are absorbed
  // from their own ledgers at snapshot time (obs::snapshot_process).
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  if (out.pipeline) {
    const obc::MemoizerStats ms = out.pipeline->obc_stats();
    metrics.set_gauge("qtx.obc.direct_calls",
                      static_cast<double>(ms.direct_calls));
    metrics.set_gauge("qtx.obc.memoized_calls",
                      static_cast<double>(ms.memoized_calls));
    metrics.set_gauge("qtx.obc.fpi_iterations",
                      static_cast<double>(ms.fpi_iterations));
    const double calls =
        static_cast<double>(ms.direct_calls + ms.memoized_calls);
    metrics.set_gauge("qtx.obc.memoize_hit_rate",
                      calls > 0.0
                          ? static_cast<double>(ms.memoized_calls) / calls
                          : 0.0);
  }
  metrics.set_gauge("qtx.run.iterations",
                    static_cast<double>(out.results.result.iterations));
  metrics.add_counter("qtx.run.completed");
  if (comm != nullptr) {
    metrics.set_gauge("qtx.comm.ranks", static_cast<double>(comm->size()));
    metrics.set_gauge(
        "qtx.comm.bytes_sent",
        static_cast<double>(out.results.comm_bytes_sent));
  }

  // In a multi-rank world the observables are replicated bit-identically
  // on every rank; only rank 0 writes files, so N ranks don't race on them.
  const bool writes_output = !s.output.directory.empty() &&
                             (comm == nullptr || comm->rank() == 0);
  if (writes_output) {
    ensure_directory(s.output.directory);
    if (s.output.csv) {
      std::vector<std::string> paths = write_result_csvs(
          s.output.directory, s, out.resolved, out.results);
      out.files.insert(out.files.end(), paths.begin(), paths.end());
    }
    if (s.output.json) {
      out.files.push_back(write_result_json(s.output.directory, s,
                                            out.resolved, out.results));
    }
  }
  return out;
}

RankedOutcome run_scenario_ranked(const Scenario& s, int ranks,
                                  double timeout_s,
                                  const core::StageRegistry& registry,
                                  const ProgressFn& progress,
                                  const std::string& trace_path,
                                  const std::string& metrics_path) {
  if (ranks < 1) {
    throw ScenarioError("ranked run needs at least 1 rank, got " +
                        std::to_string(ranks));
  }
  Scenario local = s;
  if (local.solver.comm_backend == core::kAutoBackend) {
    local.solver.comm_backend = "socket";  // auto => socket in ranked mode
  } else if (local.solver.resolved_comm_backend() != "socket") {
    throw ScenarioError(
        "comm_backend \"" + local.solver.resolved_comm_backend() +
        "\" is an in-process transport and cannot span the worker "
        "processes of a ranked run; use comm_backend = \"socket\" (or "
        "leave it on \"auto\") with --ranks");
  }

  // Read the fault-injection hooks in the parent so every worker sees a
  // consistent view even if the environment changes mid-launch.
  const char* fail_rank_env = std::getenv("QTX_RANKED_FAIL_RANK");
  const int fail_rank =
      (fail_rank_env != nullptr) ? std::atoi(fail_rank_env) : -1;
  const char* fail_mode_env = std::getenv("QTX_RANKED_FAIL_MODE");
  const std::string fail_mode =
      (fail_mode_env != nullptr) ? fail_mode_env : "exit";

  RankedOutcome out;
  out.ranks = ranks;
  out.launch =
      par::launch_ranks(ranks, timeout_s, [&](par::Comm& comm) {
        if (!trace_path.empty()) {
          // Tracing is per-process state: each forked worker enables its
          // own buffers and tags them with its rank. steady_clock's
          // timebase survives the fork, so the per-rank files merge onto
          // one consistent timeline.
          obs::set_tracing_enabled(true);
          obs::set_kernel_tracing_enabled(true);
          obs::set_trace_rank(comm.rank());
        }
        // The CLI's live print belongs to rank 0 only; a faulting rank
        // trades its hook for the injection trigger (fires after the
        // first completed iteration, i.e. mid-run).
        ProgressFn hook = (comm.rank() == 0) ? progress : ProgressFn{};
        if (comm.rank() == fail_rank) {
          hook = [&fail_mode](const core::IterationResult&) {
            inject_ranked_fault(fail_mode);
          };
        }
        run_scenario(local, registry, hook, nullptr, &comm);
        if (!trace_path.empty()) {
          obs::write_chrome_trace(trace_path + ".rank" +
                                  std::to_string(comm.rank()));
        }
        if (!metrics_path.empty() && comm.rank() == 0)
          obs::write_metrics(metrics_path);
      });
  if (!trace_path.empty() && out.launch.ok()) {
    std::vector<std::string> partials;
    partials.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r)
      partials.push_back(trace_path + ".rank" + std::to_string(r));
    obs::merge_chrome_traces(partials, trace_path);
    for (const std::string& p : partials) {
      std::error_code ec;
      std::filesystem::remove(p, ec);  // best effort: partials are advisory
    }
  }
  return out;
}

void apply_sweep_value(core::SimulationOptions& opt,
                       const std::string& parameter, double value) {
  if (parameter == "bias") {
    // Split the bias window symmetrically around the current midpoint, so
    // the sweep is centred on the scenario's operating point.
    const double mid =
        0.5 * (opt.contacts.mu_left + opt.contacts.mu_right);
    opt.contacts.mu_left = mid + 0.5 * value;
    opt.contacts.mu_right = mid - 0.5 * value;
    return;
  }
  if (parameter == "temperature") {
    opt.contacts.temperature_k = value;
    return;
  }
  core::set_option(opt, parameter, strings::format_double(value));
}

SweepOutcome run_sweep(const Scenario& s,
                       const core::StageRegistry& registry,
                       const ProgressFn& progress) {
  if (!s.has_sweep()) {
    throw ScenarioError("scenario \"" + s.name +
                        "\" has no [sweep] section; use run_scenario");
  }
  if (s.sweep.values.empty()) {
    throw ScenarioError("scenario \"" + s.name +
                        "\" sweeps \"" + s.sweep.parameter +
                        "\" over an empty value list");
  }
  const device::Structure structure = make_structure(s);
  const core::SimulationOptions base =
      resolved_solver_options(s, structure);

  SweepOutcome out;
  std::shared_ptr<core::EnergyPipeline> pipe;
  for (const double value : s.sweep.values) {
    core::SimulationOptions opt = base;
    apply_sweep_value(opt, s.sweep.parameter, value);
    // Reuse the previous point's engine when the batch layout and backend
    // keys still match (always true for bias/temperature sweeps); an
    // energy-resolution sweep rebuilds per point.
    std::shared_ptr<core::EnergyPipeline> reuse =
        (pipe && pipe->reuse_mismatch(opt.grid.n, opt).empty()) ? pipe
                                                                : nullptr;
    if (!reuse) ++out.pipeline_builds;
    core::Simulation sim(structure, opt, registry, std::move(reuse));
    if (progress) sim.on_iteration(progress);
    const core::TransportResult res = sim.run();
    SweepRow row;
    row.value = value;
    row.terminal_left = core::terminal_current_left(sim);
    row.terminal_right = core::terminal_current_right(sim);
    row.iterations = res.iterations;
    row.converged = res.converged;
    row.final_update = res.final_update;
    out.rows.push_back(row);
    if (out.rows.size() == 1) out.base_resolved = opt;
    pipe = sim.shared_pipeline();
  }

  if (!s.output.directory.empty()) {
    ensure_directory(s.output.directory);
    out.files.push_back(
        write_sweep_csv(s.output.directory, s, out.base_resolved, out.rows));
  }
  return out;
}

}  // namespace qtx::io
