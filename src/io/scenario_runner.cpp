#include "io/scenario_runner.hpp"

#include <filesystem>
#include <utility>

#include "common/strings.hpp"
#include "core/perf_model.hpp"

namespace qtx::io {
namespace {

void ensure_directory(const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    throw ScenarioError("cannot create output directory \"" + directory +
                        "\": " + ec.message());
  }
}

}  // namespace

device::Structure make_structure(const Scenario& s) {
  return device::Structure(s.device);
}

core::SimulationOptions resolved_solver_options(
    const Scenario& s, const device::Structure& structure) {
  core::SimulationOptions opt = s.solver;
  if (!s.has_mu_spec) return opt;
  double base = 0.0;
  if (s.mu_reference != "absolute") {
    const device::Structure::GapInfo gap = structure.band_gap();
    if (s.mu_reference == "midgap") {
      base = gap.midgap();
    } else if (s.mu_reference == "valence-max") {
      base = gap.valence_max;
    } else {  // "conduction-min" (the parser admits nothing else)
      base = gap.conduction_min;
    }
  }
  opt.contacts.mu_left = base + s.mu_left;
  opt.contacts.mu_right = base + s.mu_right;
  return opt;
}

RunOutcome run_scenario(const Scenario& s,
                        const core::StageRegistry& registry,
                        const ProgressFn& progress,
                        std::shared_ptr<core::EnergyPipeline> pipeline) {
  const device::Structure structure = make_structure(s);
  RunOutcome out;
  out.resolved = resolved_solver_options(s, structure);
  core::Simulation sim(structure, out.resolved, registry,
                       std::move(pipeline));
  if (progress) sim.on_iteration(progress);
  out.results.result = sim.run();

  const core::EnergyGrid& grid = out.resolved.grid;
  out.results.energies.resize(grid.n);
  for (int e = 0; e < grid.n; ++e)
    out.results.energies[e] = grid.energy(e);
  out.results.transmission = core::transmission(sim);
  out.results.dos = core::total_dos(sim);
  out.results.density = core::electron_density(sim);
  out.results.current_left = core::spectral_current_left(sim);
  out.results.current_right = core::spectral_current_right(sim);
  out.results.terminal_left = core::terminal_current_left(sim);
  out.results.terminal_right = core::terminal_current_right(sim);
  // Score the kernels against the measured (process-cached) host peak so
  // results.json carries achieved GFLOP/s vs peak for every run.
  out.results.host_peak_gflops = core::measure_host_peak().fma_gflops;

  if (!s.output.directory.empty()) {
    ensure_directory(s.output.directory);
    if (s.output.csv) {
      std::vector<std::string> paths = write_result_csvs(
          s.output.directory, s, out.resolved, out.results);
      out.files.insert(out.files.end(), paths.begin(), paths.end());
    }
    if (s.output.json) {
      out.files.push_back(write_result_json(s.output.directory, s,
                                            out.resolved, out.results));
    }
  }
  return out;
}

void apply_sweep_value(core::SimulationOptions& opt,
                       const std::string& parameter, double value) {
  if (parameter == "bias") {
    // Split the bias window symmetrically around the current midpoint, so
    // the sweep is centred on the scenario's operating point.
    const double mid =
        0.5 * (opt.contacts.mu_left + opt.contacts.mu_right);
    opt.contacts.mu_left = mid + 0.5 * value;
    opt.contacts.mu_right = mid - 0.5 * value;
    return;
  }
  if (parameter == "temperature") {
    opt.contacts.temperature_k = value;
    return;
  }
  core::set_option(opt, parameter, strings::format_double(value));
}

SweepOutcome run_sweep(const Scenario& s,
                       const core::StageRegistry& registry,
                       const ProgressFn& progress) {
  if (!s.has_sweep()) {
    throw ScenarioError("scenario \"" + s.name +
                        "\" has no [sweep] section; use run_scenario");
  }
  if (s.sweep.values.empty()) {
    throw ScenarioError("scenario \"" + s.name +
                        "\" sweeps \"" + s.sweep.parameter +
                        "\" over an empty value list");
  }
  const device::Structure structure = make_structure(s);
  const core::SimulationOptions base =
      resolved_solver_options(s, structure);

  SweepOutcome out;
  std::shared_ptr<core::EnergyPipeline> pipe;
  for (const double value : s.sweep.values) {
    core::SimulationOptions opt = base;
    apply_sweep_value(opt, s.sweep.parameter, value);
    // Reuse the previous point's engine when the batch layout and backend
    // keys still match (always true for bias/temperature sweeps); an
    // energy-resolution sweep rebuilds per point.
    std::shared_ptr<core::EnergyPipeline> reuse =
        (pipe && pipe->reuse_mismatch(opt.grid.n, opt).empty()) ? pipe
                                                                : nullptr;
    if (!reuse) ++out.pipeline_builds;
    core::Simulation sim(structure, opt, registry, std::move(reuse));
    if (progress) sim.on_iteration(progress);
    const core::TransportResult res = sim.run();
    SweepRow row;
    row.value = value;
    row.terminal_left = core::terminal_current_left(sim);
    row.terminal_right = core::terminal_current_right(sim);
    row.iterations = res.iterations;
    row.converged = res.converged;
    row.final_update = res.final_update;
    out.rows.push_back(row);
    if (out.rows.size() == 1) out.base_resolved = opt;
    pipe = sim.shared_pipeline();
  }

  if (!s.output.directory.empty()) {
    ensure_directory(s.output.directory);
    out.files.push_back(
        write_sweep_csv(s.output.directory, s, out.base_resolved, out.rows));
  }
  return out;
}

}  // namespace qtx::io
