#pragma once

/// \file scenario_parser.hpp
/// Plain-text scenario files for the `qtx` CLI driver — the input-deck
/// layer that turns the C++-only `SimulationBuilder` workflow into
/// configuration-driven runs (the role QuaTrEx/OMEN input files play for
/// the paper's production driver).
///
/// The format is an INI subset with no external dependencies:
///
///     # comment ('#' or ';', full-line or trailing)
///     [device]
///     preset = quickstart          # device catalog name (device/presets.hpp)
///     num_cells = 4                # per-key StructureParams overrides
///
///     [solver]
///     grid = -6.0 6.0 64           # shorthand for grid.e_min/e_max/n
///     eta = 0.02
///     mu_reference = conduction-min  # band-edge-relative contacts
///     mu_left = 0.3                # offsets from the reference (eV)
///     mu_right = 0.1
///     gw_scale = 0.3               # any core::set_option key works here
///     max_iterations = 4
///
///     [output]
///     directory = out              # "" = write nothing; CLI --out overrides
///     formats = csv json
///
///     [sweep]
///     parameter = bias             # bias | temperature | any option key
///     values = 0.0 0.1 0.2 0.3
///
/// Parse errors throw `ScenarioError` whose message always starts with
/// "<file>:<line>:" and names the offending key plus the known keys, so a
/// typo in a 40-line deck is a one-glance fix. `serialize_scenario` emits
/// the canonical form (every key, resolved values) — the same text the
/// result writers stamp into provenance headers — and
/// parse(serialize(parse(x))) == parse(x) holds exactly (doubles are
/// "%.17g"-formatted).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "device/presets.hpp"

namespace qtx::io {

/// Scenario-file diagnostic; `what()` is "<file>:<line>: <message>".
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The [output] section: where and in which formats `run_scenario` writes.
struct OutputSpec {
  /// Target directory (created if missing). Empty = write nothing.
  std::string directory;
  bool csv = true;   ///< write transmission/dos/density/currents/trace/timings CSVs
  bool json = true;  ///< write the all-in-one results.json
};

/// The [sweep] section: one parameter iterated over explicit values.
struct SweepSpec {
  /// "bias" (splits mu_left/mu_right symmetrically around their midpoint),
  /// "temperature" (contacts.temperature_k), or any `core::set_option` key
  /// (e.g. "grid.n" for an energy-resolution sweep). Empty = no sweep.
  std::string parameter;
  std::vector<double> values;  ///< explicit sweep points, in run order
  /// Sweep summary CSV filename within the output directory.
  std::string output = "sweep.csv";
};

/// A fully parsed scenario: device catalog selection + overrides, solver
/// options, contact reference spec, output spec, and optional sweep.
struct Scenario {
  /// [scenario] name; empty until set (parse_scenario_file falls back to
  /// the file stem when the deck carries no name key).
  std::string name;
  std::string device_preset = "quickstart";  ///< catalog name ([device] preset)
  /// Preset params + per-key overrides. The default matches the default
  /// preset, so a deck without a [device] section runs exactly the device
  /// its provenance claims.
  device::StructureParams device = device::device_preset("quickstart");
  core::SimulationOptions solver;  ///< [solver] keys via core::set_option

  /// Contact chemical potentials, resolved at run time against the device:
  /// mu_reference in {"absolute", "midgap", "valence-max",
  /// "conduction-min"}; mu_left/mu_right are offsets from that reference
  /// (plain eV values for "absolute"). When no mu_* key appears in the
  /// file, solver.contacts stands as configured (contacts.mu_left etc.).
  std::string mu_reference = "absolute";
  double mu_left = 0.0;   ///< left offset from the reference (eV)
  double mu_right = 0.0;  ///< right offset from the reference (eV)
  bool has_mu_spec = false;  ///< any mu_reference/mu_left/mu_right key seen

  OutputSpec output;  ///< [output] section
  SweepSpec sweep;    ///< [sweep] section (parameter empty = none)

  /// True when the deck carries a [sweep] section with a parameter.
  bool has_sweep() const { return !sweep.parameter.empty(); }
};

/// Parse scenario text. \p source_name labels diagnostics ("<file>:<line>:
/// ..."); pass the path when parsing a file, any tag when parsing strings.
/// Line endings: LF and CRLF parse identically (the trailing CR is
/// stripped before any key/value splitting), so decks written on Windows
/// or arriving over a socket behave exactly like on-disk LF decks. A bare
/// CR appearing *inside* a line — the signature of classic-Mac CR-only
/// files, which std::getline cannot split — is rejected with a located
/// "convert to LF or CRLF" diagnostic instead of mis-parsing the whole
/// file as one line.
Scenario parse_scenario_text(const std::string& text,
                             const std::string& source_name);

/// Read and parse a scenario file; the scenario name defaults to the file
/// stem (overridable by a [scenario] name key).
Scenario parse_scenario_file(const std::string& path);

/// Canonical INI form of \p s: every section with every key in binding
/// order. Reparsing reproduces \p s exactly.
std::string serialize_scenario(const Scenario& s);

/// Content address of a deck: the FNV-1a 64-bit hash of
/// `serialize_scenario(s)`. Because the canonical form resolves every key,
/// two decks hash equal exactly when they parse to the same scenario —
/// round-tripping (parse → serialize → parse) preserves the hash, and any
/// single key/value change alters it. This is the cache-correctness
/// invariant the serve layer's `ResultCache` rests on (test_io pins it
/// with a property test). Collisions are possible in principle (64-bit
/// hash); the result cache tolerates them as a stale-result risk bounded
/// by 2^-64 per pair, the usual content-address trade-off.
std::uint64_t canonical_deck_hash(const Scenario& s);

/// `canonical_deck_hash` as 16 lowercase hex digits (stable textual form
/// for logs, provenance, and pool keys).
std::string canonical_deck_hash_hex(const Scenario& s);

/// Stem of a path ("scenarios/quickstart.ini" → "quickstart") — the rule
/// `parse_scenario_file` uses to default a deck's scenario name. Exposed
/// so other entry points handing decks to the parser (serve requests,
/// tests) can apply the identical fallback.
std::string scenario_path_stem(const std::string& path);

/// Apply one command-line override (`qtx run --set key=value`) to a parsed
/// scenario: keys prefixed "device." route to the [device] binding
/// ("device.preset" re-selects the preset and therefore resets every device
/// parameter), everything else takes the [solver] key path — including the
/// `grid`, `tolerance`, and `mu_*` shorthands. Throws ScenarioError with a
/// "--set <key>:" prefix on unknown keys or malformed values.
void apply_scenario_override(Scenario& s, const std::string& key,
                             const std::string& value);

}  // namespace qtx::io
