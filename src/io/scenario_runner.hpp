#pragma once

/// \file scenario_runner.hpp
/// Execution of parsed scenarios (io/scenario_parser.hpp): builds the
/// device from the preset catalog, resolves band-edge-relative contacts,
/// runs the simulation through the `qtx::core::Simulation` facade, and
/// writes the configured result files (io/result_writer.hpp). This is the
/// whole `qtx run` / `qtx sweep` logic — the CLI binary only parses
/// arguments and prints; everything here is library code the test suite
/// exercises in-process.
///
/// Sweep runs share one `EnergyPipeline` across points whenever the grid,
/// batch layout, and backend keys stay fixed (bias/temperature sweeps):
/// the engine is reset — not rebuilt — between points, so a sweep with
/// `num_threads = 8` spins up one thread pool instead of one per point,
/// and every point's numbers stay bit-identical to a standalone run.

#include <functional>
#include <string>
#include <vector>

#include "core/observables.hpp"
#include "core/simulation.hpp"
#include "io/result_writer.hpp"
#include "io/scenario_parser.hpp"
#include "par/launcher.hpp"

namespace qtx::io {

/// Build the scenario's device structure (preset params + overrides).
device::Structure make_structure(const Scenario& s);

/// The options the simulation actually runs with: the scenario's solver
/// options with `mu_reference`-relative contacts materialized against the
/// device's band edges (no-op when the scenario carries no mu spec).
core::SimulationOptions resolved_solver_options(
    const Scenario& s, const device::Structure& structure);

/// Outcome of one `run_scenario` call.
struct RunOutcome {
  ScenarioResults results;            ///< observables + run record
  core::SimulationOptions resolved;   ///< provenance: the options used
  std::vector<std::string> files;     ///< paths written (empty if no output)
  /// The run's energy pipeline, handed out for reuse (the
  /// `shared_pipeline()` transfer — the Simulation that ran is gone by the
  /// time run_scenario returns, so the caller owns the only live handle).
  /// Pass it back as run_scenario's \p pipeline — or shelve it in a
  /// serve::PipelinePool — to skip the engine build on the next compatible
  /// run; drop it to discard the warm state.
  std::shared_ptr<core::EnergyPipeline> pipeline;
};

/// Per-iteration progress hook (e.g. the CLI's live convergence print).
using ProgressFn = std::function<void(const core::IterationResult&)>;

/// Run one scenario end-to-end: build, solve, collect observables, and —
/// when the scenario's output directory is non-empty — write the
/// configured CSV/JSON files (the directory is created if missing).
/// \p pipeline optionally reuses a previous run's energy pipeline (must
/// match the scenario's grid/backends; see Simulation's constructor).
/// \p comm, when non-null, shards the solver stages over its world
/// (`Simulation::distribute_over`): every rank of the world must call
/// run_scenario with its own rank's Comm, observables are replicated and
/// bit-identical on every rank, and only rank 0 writes output files (the
/// other ranks return an empty `files` list). The results carry the comm
/// provenance (ranks / backend / world-total bytes) for results.json.
RunOutcome run_scenario(const Scenario& s,
                        const core::StageRegistry& registry =
                            core::StageRegistry::global(),
                        const ProgressFn& progress = nullptr,
                        std::shared_ptr<core::EnergyPipeline> pipeline =
                            nullptr,
                        par::Comm* comm = nullptr);

/// Outcome of a multi-process `run_scenario_ranked` launch. The worker
/// processes run the scenario (rank 0 writes the output files); the parent
/// only supervises, so the outcome is the launch report — results live in
/// the files the workers wrote.
struct RankedOutcome {
  par::LaunchReport launch;  ///< exit code, failed ranks, diagnostic
  int ranks = 0;             ///< world size that was launched
};

/// Run \p s sharded over \p ranks forked worker processes wired by the
/// socket transport (`par::launch_ranks` + `SocketComm`): this is the
/// `qtx run --ranks N` engine. The scenario's comm_backend must resolve to
/// "socket" — "auto" is resolved to "socket" here; an explicit in-process
/// backend ("device-direct", "host-staged") throws ScenarioError, since
/// those transports cannot span processes. \p timeout_s bounds the whole
/// run; on expiry the supervisor kills and reaps every worker and the
/// report says so. \p progress fires in the rank-0 worker process only.
/// Call from a single-threaded process state (the workers are forked).
///
/// Test-only fault injection: when the environment variable
/// `QTX_RANKED_FAIL_RANK` names a rank, that worker fails after its first
/// iteration according to `QTX_RANKED_FAIL_MODE` — "exit" (default,
/// nonzero _exit), "throw" (uncaught C++ exception), "kill" (SIGKILL
/// itself), or "hang" (sleep past any timeout). Exercised by the
/// fault-injection tests in tests/test_comm_transport.cpp.
///
/// Observability (`qtx run --ranks N --trace/--metrics`): a non-empty
/// \p trace_path enables obs tracing in every worker (tagged with its
/// rank); each rank writes `<trace_path>.rank<r>` and, after a clean
/// launch, the supervisor merges them into \p trace_path and removes the
/// partials. A non-empty \p metrics_path makes rank 0 — the rank that owns
/// the output files — write its obs metrics snapshot there.
RankedOutcome run_scenario_ranked(const Scenario& s, int ranks,
                                  double timeout_s,
                                  const core::StageRegistry& registry =
                                      core::StageRegistry::global(),
                                  const ProgressFn& progress = nullptr,
                                  const std::string& trace_path = "",
                                  const std::string& metrics_path = "");

/// Outcome of a `run_sweep` call: the summary rows plus every file written.
struct SweepOutcome {
  std::vector<SweepRow> rows;  ///< one row per sweep value, in order
  core::SimulationOptions base_resolved;  ///< point-0 options (provenance)
  std::vector<std::string> files;  ///< paths written (empty if no output)
  int pipeline_builds = 0;  ///< energy pipelines constructed (1 = fully reused)
};

/// Apply one sweep point to \p opt: "bias" splits the value symmetrically
/// around the current contact midpoint (mu_left/right = mid ± value/2),
/// "temperature" sets contacts.temperature_k, and any other parameter is
/// routed through `core::set_option` (so "grid.n", "eta", ... all sweep).
void apply_sweep_value(core::SimulationOptions& opt,
                       const std::string& parameter, double value);

/// Run the scenario's [sweep]: one simulation per value (reusing the
/// energy pipeline whenever compatible), collecting terminal currents and
/// convergence per point, and writing the sweep summary CSV when the
/// output directory is non-empty. Throws ScenarioError if the scenario has
/// no sweep section.
SweepOutcome run_sweep(const Scenario& s,
                       const core::StageRegistry& registry =
                           core::StageRegistry::global(),
                       const ProgressFn& progress = nullptr);

}  // namespace qtx::io
