#include "io/result_writer.hpp"

#include <fstream>
#include <istream>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace qtx::io {
namespace {

namespace qs = qtx::strings;

std::ofstream open_for_write(const std::string& path) {
  std::ofstream out(path);
  QTX_CHECK_MSG(out.good(), "cannot write \"" << path
                                              << "\" (does the output "
                                                 "directory exist?)");
  return out;
}

std::string join_path(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

}  // namespace

std::vector<std::string> provenance_lines(
    const Scenario& scenario, const core::SimulationOptions& resolved) {
  std::vector<std::string> lines;
  lines.push_back("qtx scenario: " + scenario.name);
  lines.push_back("device.preset = " + scenario.device_preset);
  for (const auto& [key, value] :
       device::serialize_structure_params(scenario.device))
    lines.push_back("device." + key + " = " + value);
  for (const core::OptionKV& kv : core::serialize_options(resolved))
    lines.push_back("solver." + kv.first + " = " + kv.second);
  return lines;
}

void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<CsvColumn>& columns) {
  QTX_CHECK_MSG(!columns.empty(), "write_csv needs at least one column");
  const std::size_t rows = columns.front().values->size();
  for (const CsvColumn& c : columns)
    QTX_CHECK_MSG(c.values->size() == rows,
                  "CSV column \"" << c.name << "\" has " << c.values->size()
                                  << " rows, expected " << rows);
  for (const std::string& line : header) os << "# " << line << "\n";
  for (std::size_t c = 0; c < columns.size(); ++c)
    os << (c ? "," : "") << columns[c].name;
  os << "\n";
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c)
      os << (c ? "," : "") << qs::format_double((*columns[c].values)[r]);
    os << "\n";
  }
}

std::vector<double> read_csv_column(std::istream& is, int column) {
  std::vector<double> values;
  std::string line;
  bool seen_names = false;
  while (std::getline(is, line)) {
    // CRLF reads identically to LF; a CR *inside* the line means the file
    // uses CR-only endings that getline cannot split — without this check
    // the whole file collapses into the name row and the function would
    // silently return no values at all.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    QTX_CHECK_MSG(line.find('\r') == std::string::npos,
                  "CSV line contains a bare CR — CR-only (classic Mac) "
                  "line endings are not supported; convert the file to LF "
                  "or CRLF");
    const std::string t = qs::trim(line);
    if (t.empty() || t[0] == '#') continue;
    if (!seen_names) {  // the column-name row
      seen_names = true;
      continue;
    }
    std::vector<std::string> fields;
    std::string field;
    for (const char ch : t) {
      if (ch == ',') {
        fields.push_back(field);
        field.clear();
      } else {
        field.push_back(ch);
      }
    }
    fields.push_back(field);
    QTX_CHECK_MSG(column >= 0 && column < static_cast<int>(fields.size()),
                  "CSV row \"" << t << "\" has no column " << column);
    values.push_back(qs::parse_double(fields[column]));
  }
  return values;
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::separator() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_) os_ << ",";
  newline_indent();
  first_ = false;
}

void JsonWriter::newline_indent() {
  if (depth_ == 0) return;
  os_ << "\n";
  for (int i = 0; i < depth_; ++i) os_ << "  ";
}

void JsonWriter::escape(const std::string& s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os_ << "\\\"";
        break;
      case '\\':
        os_ << "\\\\";
        break;
      case '\n':
        os_ << "\\n";
        break;
      case '\t':
        os_ << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

void JsonWriter::begin_object() {
  separator();
  os_ << "{";
  ++depth_;
  first_ = true;
}

void JsonWriter::end_object() {
  --depth_;
  if (!first_) newline_indent();
  os_ << "}";
  first_ = false;
}

void JsonWriter::begin_array() {
  separator();
  os_ << "[";
  ++depth_;
  first_ = true;
}

void JsonWriter::end_array() {
  --depth_;
  if (!first_) newline_indent();
  os_ << "]";
  first_ = false;
}

void JsonWriter::key(const std::string& k) {
  separator();
  escape(k);
  os_ << ": ";
  after_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  separator();
  escape(v);
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  separator();
  os_ << qs::format_double(v);
}

void JsonWriter::value(int v) {
  separator();
  os_ << v;
}

void JsonWriter::value(bool v) {
  separator();
  os_ << (v ? "true" : "false");
}

void JsonWriter::kv_array(const std::string& k,
                          const std::vector<double>& values) {
  key(k);
  begin_array();
  for (const double v : values) value(v);
  end_array();
}

// ---------------------------------------------------------------------------
// Result files
// ---------------------------------------------------------------------------

std::vector<std::string> write_result_csvs(
    const std::string& directory, const Scenario& scenario,
    const core::SimulationOptions& resolved, const ScenarioResults& results) {
  const std::vector<std::string> header =
      provenance_lines(scenario, resolved);
  std::vector<std::string> paths;

  const auto write_series = [&](const std::string& file,
                                const std::vector<CsvColumn>& cols) {
    const std::string path = join_path(directory, file);
    std::ofstream out = open_for_write(path);
    write_csv(out, header, cols);
    paths.push_back(path);
  };

  write_series("transmission.csv", {{"energy_ev", &results.energies},
                                    {"transmission", &results.transmission}});
  write_series("dos.csv",
               {{"energy_ev", &results.energies}, {"dos", &results.dos}});
  {
    std::vector<double> cell(results.density.size());
    for (std::size_t i = 0; i < cell.size(); ++i)
      cell[i] = static_cast<double>(i);
    write_series("density.csv",
                 {{"cell", &cell}, {"density", &results.density}});
  }
  {
    std::vector<std::string> current_header = header;
    current_header.push_back(
        "terminal_current_left = " + qs::format_double(results.terminal_left));
    current_header.push_back("terminal_current_right = " +
                             qs::format_double(results.terminal_right));
    const std::string path = join_path(directory, "currents.csv");
    std::ofstream out = open_for_write(path);
    write_csv(out, current_header,
              {{"energy_ev", &results.energies},
               {"spectral_current_left", &results.current_left},
               {"spectral_current_right", &results.current_right}});
    paths.push_back(path);
  }
  {
    std::vector<double> iter, update, seconds, converged, damping, ratio;
    bool has_mixer_data = false;
    for (const core::IterationResult& it : results.result.history) {
      iter.push_back(it.iteration);
      update.push_back(it.sigma_update);
      seconds.push_back(it.seconds);
      converged.push_back(it.converged ? 1.0 : 0.0);
      damping.push_back(it.damping);
      ratio.push_back(it.residual_ratio);
      has_mixer_data = has_mixer_data || it.damping > 0.0;
    }
    // The convergence-monitor columns appear only when a mixing stage ran
    // (damping > 0): append-only provenance — histories recorded before
    // the accel layer existed (and the goldens pinning them) keep their
    // exact byte layout.
    std::vector<CsvColumn> cols = {{"iteration", &iter},
                                   {"sigma_update", &update},
                                   {"seconds", &seconds},
                                   {"converged", &converged}};
    if (has_mixer_data) {
      cols.push_back({"damping", &damping});
      cols.push_back({"residual_ratio", &ratio});
    }
    write_series("trace.csv", cols);
  }
  {
    // Kernel timings: one row per Table 4 ledger entry, summed over the run.
    const std::string path = join_path(directory, "timings.csv");
    std::ofstream out = open_for_write(path);
    for (const std::string& line : header) out << "# " << line << "\n";
    out << "kernel,seconds,flops\n";
    for (const auto& [kernel, sec] : results.result.kernel_seconds) {
      const auto it = results.result.kernel_flops.find(kernel);
      const long long flops =
          (it == results.result.kernel_flops.end()) ? 0 : it->second;
      out << '"' << kernel << "\"," << qs::format_double(sec) << ","
          << flops << "\n";
    }
    paths.push_back(path);
  }
  return paths;
}

namespace {

/// The results.json document body; both the file writer and the in-memory
/// renderer stream through here, so their bytes cannot drift apart.
void stream_result_json(std::ostream& out, const Scenario& scenario,
                        const core::SimulationOptions& resolved,
                        const ScenarioResults& results) {
  JsonWriter j(out);
  j.begin_object();
  j.kv("scenario", scenario.name);

  j.key("provenance");
  j.begin_object();
  j.key("device");
  j.begin_object();
  j.kv("preset", scenario.device_preset);
  for (const auto& [key, value] :
       device::serialize_structure_params(scenario.device))
    j.kv(key, value);
  j.end_object();
  j.key("solver");
  j.begin_object();
  for (const core::OptionKV& kv : core::serialize_options(resolved))
    j.kv(kv.first, kv.second);
  j.end_object();
  j.end_object();

  j.key("result");
  j.begin_object();
  j.kv("converged", results.result.converged);
  j.kv("iterations", results.result.iterations);
  j.kv("stop_reason", core::to_string(results.result.stop_reason));
  j.kv("final_update", results.result.final_update);
  j.kv("total_seconds", results.result.total_seconds);
  j.key("history");
  j.begin_array();
  bool has_mixer_data = false;
  for (const core::IterationResult& it : results.result.history)
    has_mixer_data = has_mixer_data || it.damping > 0.0;
  for (const core::IterationResult& it : results.result.history) {
    j.begin_object();
    j.kv("iteration", it.iteration);
    j.kv("sigma_update", it.sigma_update);
    j.kv("seconds", it.seconds);
    j.kv("converged", it.converged);
    // Monitor diagnostics only when a mixing stage ran (see trace.csv).
    if (has_mixer_data) {
      j.kv("damping", it.damping);
      j.kv("residual_ratio", it.residual_ratio);
    }
    j.end_object();
  }
  j.end_array();
  j.end_object();

  j.key("observables");
  j.begin_object();
  j.kv_array("energy_ev", results.energies);
  j.kv_array("transmission", results.transmission);
  j.kv_array("dos", results.dos);
  j.kv_array("density", results.density);
  j.kv_array("spectral_current_left", results.current_left);
  j.kv_array("spectral_current_right", results.current_right);
  j.kv("terminal_current_left", results.terminal_left);
  j.kv("terminal_current_right", results.terminal_right);
  j.end_object();

  j.key("kernel_seconds");
  j.begin_object();
  for (const auto& [kernel, sec] : results.result.kernel_seconds)
    j.kv(kernel, sec);
  j.end_object();

  // Achieved GFLOP/s per kernel against the measured host peak; present
  // only when run_scenario measured one (see ScenarioResults).
  if (results.host_peak_gflops > 0.0) {
    j.key("performance");
    j.begin_object();
    j.kv("host_peak_gflops", results.host_peak_gflops);
    j.kv("la_backend", resolved.resolved_la_backend());
    j.key("kernels");
    j.begin_object();
    for (const auto& [kernel, sec] : results.result.kernel_seconds) {
      const auto it = results.result.kernel_flops.find(kernel);
      const double flops =
          (it == results.result.kernel_flops.end())
              ? 0.0
              : static_cast<double>(it->second);
      const double gflops = (sec > 0.0) ? flops / sec / 1e9 : 0.0;
      j.key(kernel);
      j.begin_object();
      j.kv("seconds", sec);
      j.kv("flops", flops);
      j.kv("gflops", gflops);
      j.kv("pct_of_host_peak",
           100.0 * gflops / results.host_peak_gflops);
      j.end_object();
    }
    j.end_object();
    j.end_object();
  }

  // Multi-rank provenance; present only when the run was sharded over a
  // communicator (see ScenarioResults) — sequential runs omit it.
  if (results.comm_ranks > 0) {
    j.key("comm");
    j.begin_object();
    j.kv("ranks", results.comm_ranks);
    j.kv("backend", results.comm_backend);
    j.kv("bytes_sent", results.comm_bytes_sent);
    j.end_object();
  }

  j.end_object();
  out << "\n";
}

}  // namespace

std::string render_result_json(const Scenario& scenario,
                               const core::SimulationOptions& resolved,
                               const ScenarioResults& results) {
  std::ostringstream out;
  stream_result_json(out, scenario, resolved, results);
  return out.str();
}

std::string write_result_json(const std::string& directory,
                              const Scenario& scenario,
                              const core::SimulationOptions& resolved,
                              const ScenarioResults& results) {
  const std::string path = join_path(directory, "results.json");
  std::ofstream out = open_for_write(path);
  stream_result_json(out, scenario, resolved, results);
  return path;
}

std::string write_sweep_csv(const std::string& directory,
                            const Scenario& scenario,
                            const core::SimulationOptions& resolved,
                            const std::vector<SweepRow>& rows) {
  const std::string path = join_path(directory, scenario.sweep.output);
  std::ofstream out = open_for_write(path);
  std::vector<std::string> header = provenance_lines(scenario, resolved);
  header.push_back("sweep.parameter = " + scenario.sweep.parameter);
  std::vector<double> value, il, ir, iters, conv, update;
  for (const SweepRow& r : rows) {
    value.push_back(r.value);
    il.push_back(r.terminal_left);
    ir.push_back(r.terminal_right);
    iters.push_back(r.iterations);
    conv.push_back(r.converged ? 1.0 : 0.0);
    update.push_back(r.final_update);
  }
  write_csv(out, header,
            {{scenario.sweep.parameter, &value},
             {"terminal_current_left", &il},
             {"terminal_current_right", &ir},
             {"iterations", &iters},
             {"converged", &conv},
             {"final_update", &update}});
  return path;
}

}  // namespace qtx::io
