#include "io/scenario_parser.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "common/strings.hpp"

namespace qtx::io {
namespace {

namespace qs = qtx::strings;

/// Line-scoped diagnostic context: every throw is prefixed "<file>:<line>:".
struct LineContext {
  const std::string& source;
  int line = 0;

  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream os;
    os << source << ":" << line << ": " << message;
    throw ScenarioError(os.str());
  }

  /// Run \p fn, rethrowing any std::runtime_error with the file:line prefix.
  template <class Fn>
  void wrap(Fn&& fn) const {
    try {
      fn();
    } catch (const ScenarioError&) {
      throw;  // already located
    } catch (const std::runtime_error& e) {
      fail(e.what());
    }
  }
};

/// Strip a trailing '#' or ';' comment. Consequence: values (names,
/// output paths) cannot contain either character — a documented format
/// limitation, not an escape-syntax TODO.
std::string strip_comment(const std::string& line) {
  const std::size_t pos = line.find_first_of("#;");
  return (pos == std::string::npos) ? line : line.substr(0, pos);
}

std::string file_stem(const std::string& path) {
  std::size_t begin = path.find_last_of("/\\");
  begin = (begin == std::string::npos) ? 0 : begin + 1;
  std::size_t end = path.rfind('.');
  if (end == std::string::npos || end <= begin) end = path.size();
  return path.substr(begin, end - begin);
}

void apply_solver_key(Scenario& s, const LineContext& ctx,
                      const std::string& key, const std::string& value) {
  if (key == "grid") {
    const std::vector<std::string> parts = qs::split_list(value);
    if (parts.size() != 3)
      ctx.fail("option \"grid\" expects \"<e_min> <e_max> <n>\" (3 values), "
               "got \"" + value + "\"");
    ctx.wrap([&] {
      s.solver.grid.e_min = qs::parse_double(parts[0]);
      s.solver.grid.e_max = qs::parse_double(parts[1]);
      s.solver.grid.n = qs::parse_int32(parts[2]);
    });
    return;
  }
  if (key == "tolerance") {  // friendly alias of the builder spelling
    ctx.wrap([&] { s.solver.tol = qs::parse_double(value); });
    return;
  }
  if (key == "mu_reference") {
    if (value != "absolute" && value != "midgap" && value != "valence-max" &&
        value != "conduction-min") {
      ctx.fail("mu_reference must be one of absolute, midgap, valence-max, "
               "conduction-min; got \"" + value + "\"");
    }
    s.mu_reference = value;
    s.has_mu_spec = true;
    return;
  }
  if (key == "mu_left") {
    ctx.wrap([&] { s.mu_left = qs::parse_double(value); });
    s.has_mu_spec = true;
    return;
  }
  if (key == "mu_right") {
    ctx.wrap([&] { s.mu_right = qs::parse_double(value); });
    s.has_mu_spec = true;
    return;
  }
  ctx.wrap([&] { core::set_option(s.solver, key, value); });
}

void apply_output_key(Scenario& s, const LineContext& ctx,
                      const std::string& key, const std::string& value) {
  if (key == "directory") {
    s.output.directory = value;
    return;
  }
  if (key == "formats") {
    s.output.csv = false;
    s.output.json = false;
    for (const std::string& fmt : qs::split_list(value)) {
      if (fmt == "csv") {
        s.output.csv = true;
      } else if (fmt == "json") {
        s.output.json = true;
      } else {
        ctx.fail("unknown output format \"" + fmt +
                 "\"; known formats: csv, json");
      }
    }
    return;
  }
  ctx.fail("unknown [output] key \"" + key +
           "\"; known keys: directory, formats");
}

void apply_sweep_key(Scenario& s, const LineContext& ctx,
                     const std::string& key, const std::string& value) {
  if (key == "parameter") {
    // Validate eagerly so a typo'd sweep key fails at its own line instead
    // of after the first point has already been solved.
    if (value != "bias" && value != "temperature") {
      const std::vector<std::string> keys = core::option_keys();
      if (std::find(keys.begin(), keys.end(), value) == keys.end()) {
        std::string known = "bias, temperature";
        for (const std::string& k : keys) known += ", " + k;
        ctx.fail("[sweep] parameter \"" + value +
                 "\" is neither \"bias\", \"temperature\", nor a solver "
                 "option key; known parameters: " + known);
      }
      // Sweep values are numbers, so string-typed keys (mixer,
      // obc_backend, ...) can never sweep — probing the binding with a
      // non-numeric sentinel exposes them: only string setters accept it.
      core::SimulationOptions scratch;
      bool accepts_text = true;
      try {
        core::set_option(scratch, value, "not-a-number?");
      } catch (const std::runtime_error&) {
        accepts_text = false;
      }
      if (accepts_text) {
        ctx.fail("[sweep] parameter \"" + value +
                 "\" is a string-typed option; sweep values are numbers — "
                 "run one scenario per " + value +
                 " (e.g. via qtx run --set " + value + "=...)");
      }
    }
    s.sweep.parameter = value;
    return;
  }
  if (key == "values") {
    ctx.wrap([&] { s.sweep.values = qs::parse_double_list(value); });
    return;
  }
  if (key == "output") {
    s.sweep.output = value;
    return;
  }
  ctx.fail("unknown [sweep] key \"" + key +
           "\"; known keys: parameter, values, output");
}

}  // namespace

Scenario parse_scenario_text(const std::string& text,
                             const std::string& source_name) {
  Scenario s;
  LineContext ctx{source_name};
  std::istringstream in(text);
  std::string raw, section;
  bool device_overridden = false;  // any non-preset [device] key seen yet
  std::set<std::string> seen;      // "<section>.<key>" pairs already set
  while (std::getline(in, raw)) {
    ++ctx.line;
    // CRLF parses identically to LF: strip the trailing CR before any
    // splitting (locale-independent, unlike relying on trim's isspace).
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    // A CR that is *not* a line terminator means the file uses CR-only
    // (classic Mac) endings, which getline cannot split — the whole deck
    // arrives as one mega-line. Fail with a conversion hint instead of
    // reporting a baffling "expected key = value" on the joined text.
    if (raw.find('\r') != std::string::npos) {
      ctx.fail("bare CR within the line — CR-only (classic Mac) line "
               "endings are not supported; convert the deck to LF or "
               "CRLF");
    }
    const std::string line = qs::trim(strip_comment(raw));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        ctx.fail("malformed section header \"" + line + "\" (missing ']')");
      section = qs::trim(line.substr(1, line.size() - 2));
      if (section != "scenario" && section != "device" &&
          section != "solver" && section != "output" && section != "sweep") {
        ctx.fail("unknown section [" + section +
                 "]; known sections: [scenario], [device], [solver], "
                 "[output], [sweep]");
      }
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos)
      ctx.fail("expected \"key = value\" or \"[section]\", got \"" + line +
               "\"");
    const std::string key = qs::trim(line.substr(0, eq));
    const std::string value = qs::trim(line.substr(eq + 1));
    if (key.empty()) ctx.fail("empty key before '='");
    if (section.empty())
      ctx.fail("key \"" + key +
               "\" appears before any [section] header; start with "
               "[scenario], [device], [solver], [output], or [sweep]");
    // A repeated key would silently last-win; reject it so a copy-paste
    // slip in a long deck cannot shadow an earlier setting.
    if (!seen.insert(section + "." + key).second)
      ctx.fail("duplicate key \"" + key + "\" in [" + section +
               "] (already set earlier in this deck; each key may appear "
               "once)");

    if (section == "scenario") {
      if (key == "name") {
        s.name = value;
      } else {
        ctx.fail("unknown [scenario] key \"" + key + "\"; known keys: name");
      }
    } else if (section == "device") {
      if (key == "preset") {
        // A preset resets every device parameter, so accepting one after
        // overrides would silently discard them.
        if (device_overridden)
          ctx.fail("\"preset\" must come before per-key device overrides "
                   "(selecting a preset resets all device parameters)");
        ctx.wrap([&] {
          s.device = device::device_preset(value);
          s.device_preset = value;
        });
      } else {
        ctx.wrap([&] { device::set_structure_param(s.device, key, value); });
        device_overridden = true;
      }
    } else if (section == "solver") {
      apply_solver_key(s, ctx, key, value);
    } else if (section == "output") {
      apply_output_key(s, ctx, key, value);
    } else {  // sweep
      apply_sweep_key(s, ctx, key, value);
    }
  }
  if (!s.sweep.values.empty() && s.sweep.parameter.empty()) {
    ctx.fail("[sweep] lists values but no parameter; add \"parameter = "
             "bias\" (or temperature, or any option key)");
  }
  return s;
}

Scenario parse_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ScenarioError("cannot open scenario file \"" + path + "\"");
  std::ostringstream buf;
  buf << in.rdbuf();
  Scenario s = parse_scenario_text(buf.str(), path);
  if (s.name.empty()) s.name = scenario_path_stem(path);
  return s;
}

std::string scenario_path_stem(const std::string& path) {
  return file_stem(path);
}

void apply_scenario_override(Scenario& s, const std::string& key,
                             const std::string& value) {
  try {
    if (key.rfind("device.", 0) == 0) {
      const std::string dev_key = key.substr(7);
      if (dev_key == "preset") {
        s.device = device::device_preset(value);
        s.device_preset = value;
      } else {
        device::set_structure_param(s.device, dev_key, value);
      }
      return;
    }
    // The [solver] path, including the grid/tolerance/mu_* shorthands.
    // The context's source labels diagnostics; line 0 keeps the prefix
    // readable ("--set eta:0:" never appears because apply_solver_key only
    // uses ctx to *wrap* binding errors, which this catch re-prefixes).
    LineContext ctx{key, 0};
    try {
      apply_solver_key(s, ctx, key, value);
    } catch (const ScenarioError& e) {
      // Strip the synthetic "<key>:0: " location; the catch below adds the
      // uniform "--set <key>:" prefix instead.
      const std::string msg = e.what();
      const std::string prefix = key + ":0: ";
      throw std::runtime_error(
          msg.rfind(prefix, 0) == 0 ? msg.substr(prefix.size()) : msg);
    }
  } catch (const std::runtime_error& e) {
    throw ScenarioError("--set " + key + "=" + value + ": " + e.what());
  }
}

std::string serialize_scenario(const Scenario& s) {
  std::ostringstream os;
  os << "[scenario]\n";
  os << "name = " << s.name << "\n\n";

  os << "[device]\n";
  os << "preset = " << s.device_preset << "\n";
  // Emit only the keys that differ from the preset: the canonical form
  // stays minimal and re-applying "preset" then the overrides reproduces
  // the params exactly.
  const auto preset_kvs =
      device::serialize_structure_params(device::device_preset(s.device_preset));
  const auto device_kvs = device::serialize_structure_params(s.device);
  for (std::size_t i = 0; i < device_kvs.size(); ++i)
    if (device_kvs[i].second != preset_kvs[i].second)
      os << device_kvs[i].first << " = " << device_kvs[i].second << "\n";
  os << "\n";

  os << "[solver]\n";
  for (const core::OptionKV& kv : core::serialize_options(s.solver))
    os << kv.first << " = " << kv.second << "\n";
  if (s.has_mu_spec) {
    os << "mu_reference = " << s.mu_reference << "\n";
    os << "mu_left = " << qs::format_double(s.mu_left) << "\n";
    os << "mu_right = " << qs::format_double(s.mu_right) << "\n";
  }
  os << "\n";

  os << "[output]\n";
  os << "directory = " << s.output.directory << "\n";
  os << "formats =";
  if (s.output.csv) os << " csv";
  if (s.output.json) os << " json";
  os << "\n";

  if (s.has_sweep()) {
    os << "\n[sweep]\n";
    os << "parameter = " << s.sweep.parameter << "\n";
    os << "values = " << qs::format_double_list(s.sweep.values) << "\n";
    os << "output = " << s.sweep.output << "\n";
  }
  return os.str();
}

std::uint64_t canonical_deck_hash(const Scenario& s) {
  // FNV-1a 64-bit over the canonical serialized form: simple, dependency-
  // free, and byte-deterministic across platforms (the canonical text is
  // "%.17g"-stable, so equal scenarios hash equal everywhere).
  const std::string text = serialize_scenario(s);
  std::uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

std::string canonical_deck_hash_hex(const Scenario& s) {
  std::uint64_t h = canonical_deck_hash(s);
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[i] = "0123456789abcdef"[h & 0xF];
    h >>= 4;
  }
  return hex;
}

}  // namespace qtx::io
