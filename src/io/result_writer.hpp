#pragma once

/// \file result_writer.hpp
/// Structured result output for the `qtx` driver: CSV series files
/// (transmission, DOS, density, currents, iteration trace, kernel timings,
/// sweep summaries) and an all-in-one results.json — each stamped with a
/// provenance header so a result file always records the exact resolved
/// device parameters and solver options that produced it (round-trippable
/// "%.17g" values; re-running the header's scenario reproduces the file
/// bit-identically).
///
/// The writers are deliberately deterministic: no timestamps, no
/// environment capture — the golden-file tests diff their output verbatim.

#include <ostream>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "io/scenario_parser.hpp"

namespace qtx::io {

/// One named column of a CSV series file.
struct CsvColumn {
  std::string name;  ///< column header (no commas)
  const std::vector<double>* values = nullptr;  ///< column data (borrowed)
};

/// Provenance block for output headers: the scenario name, the device
/// preset + resolved parameters, and the resolved solver options, one
/// "key = value" per line (no '#' prefix; the writers add their own
/// comment markers). \p resolved is the post-resolution option set the
/// simulation actually ran with (contacts materialized, backends resolved).
std::vector<std::string> provenance_lines(
    const Scenario& scenario, const core::SimulationOptions& resolved);

/// Write a CSV file: '#'-prefixed header lines, a column-name row, then one
/// row per index. All columns must have equal length; doubles are
/// "%.17g"-formatted so readers recover them bit-identically.
void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<CsvColumn>& columns);

/// Read back the \p column-th numeric column of a CSV written by
/// `write_csv` (skips '#' comments and the name row). The inverse the CLI
/// smoke test uses to diff a transmission CSV against the golden file.
/// Line endings: LF and CRLF read identically (the trailing CR is stripped
/// before field splitting); a bare CR inside a line — a CR-only (classic
/// Mac) file, which previously made this function silently return an empty
/// vector because the whole file collapsed into the name row — fails a
/// QTX_CHECK with a "convert to LF or CRLF" diagnostic.
std::vector<double> read_csv_column(std::istream& is, int column);

/// Minimal JSON emitter (objects, arrays, strings, numbers, booleans) —
/// enough for results.json without external dependencies. Numbers are
/// "%.17g"; strings are escaped per RFC 8259.
class JsonWriter {
 public:
  /// Writes JSON onto \p os (borrowed; must outlive the writer).
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();  ///< emit '{' (as a value or array element)
  void end_object();    ///< emit the matching '}'
  void begin_array();   ///< emit '[' (as a value or array element)
  void end_array();     ///< emit the matching ']'
  /// Start a "key": inside an object; follow with a value call.
  void key(const std::string& k);
  void value(const std::string& v);  ///< emit an escaped string value
  void value(const char* v);         ///< emit an escaped string value
  void value(double v);              ///< emit a "%.17g" number
  void value(int v);                 ///< emit an integer
  void value(bool v);                ///< emit true/false
  /// Shorthand: key + scalar value.
  template <class T>
  void kv(const std::string& k, const T& v) {
    key(k);
    value(v);
  }
  /// key + array of doubles.
  void kv_array(const std::string& k, const std::vector<double>& values);

 private:
  void separator();
  void newline_indent();
  void escape(const std::string& s);

  std::ostream& os_;
  int depth_ = 0;
  bool first_ = true;       ///< no separator needed before the next item
  bool after_key_ = false;  ///< value follows a key on the same line
};

/// Everything `run_scenario` materializes for the writers: the observables
/// of the converged (or budget-exhausted) state plus the run record.
struct ScenarioResults {
  core::TransportResult result;       ///< the run record (history, timings)
  std::vector<double> energies;       ///< grid energies, for CSV axes
  std::vector<double> transmission;   ///< T(E)
  std::vector<double> dos;            ///< total DOS(E)
  std::vector<double> density;        ///< electrons per transport cell
  std::vector<double> current_left;   ///< spectral current i_L(E)
  std::vector<double> current_right;  ///< spectral current i_R(E)
  double terminal_left = 0.0;
  double terminal_right = 0.0;
  /// Measured single-core FP64 FMA peak of the host (GFLOP/s), from
  /// core::measure_host_peak(); run_scenario stamps it. When nonzero,
  /// results.json gains a "performance" section scoring each kernel's
  /// achieved GFLOP/s against it. 0 (the default) omits the section — the
  /// append-only policy that keeps pre-existing golden files byte-exact.
  double host_peak_gflops = 0.0;
  /// Multi-rank provenance, stamped when the run was sharded over a
  /// communicator (`qtx run --ranks`, or run_scenario with a comm). When
  /// comm_ranks > 0, results.json gains a "comm" section recording the
  /// world size, the transport key, and the total bytes exchanged. 0 (the
  /// default) omits the section — same append-only policy as above, so
  /// sequential runs stay byte-identical to the checked-in goldens.
  int comm_ranks = 0;
  std::string comm_backend;      ///< registry key of the transport used
  double comm_bytes_sent = 0.0;  ///< world-total payload bytes (allreduced)
};

/// Write the CSV set into \p directory (transmission.csv, dos.csv,
/// density.csv, currents.csv, trace.csv, timings.csv). Returns the paths
/// written. The directory must already exist (run_scenario creates it).
std::vector<std::string> write_result_csvs(
    const std::string& directory, const Scenario& scenario,
    const core::SimulationOptions& resolved, const ScenarioResults& results);

/// Render the all-in-one results.json document as a string — the exact
/// bytes `write_result_json` puts on disk (trailing newline included), so
/// in-memory consumers (the serve layer's response path and result cache)
/// stay bit-identical to `qtx run`'s file output by construction.
std::string render_result_json(const Scenario& scenario,
                               const core::SimulationOptions& resolved,
                               const ScenarioResults& results);

/// Write the all-in-one results.json; returns its path.
std::string write_result_json(const std::string& directory,
                              const Scenario& scenario,
                              const core::SimulationOptions& resolved,
                              const ScenarioResults& results);

/// One sweep point for the summary CSV.
struct SweepRow {
  double value = 0.0;             ///< the swept parameter's value
  double terminal_left = 0.0;     ///< I_L at this point (e/hbar per spin)
  double terminal_right = 0.0;    ///< I_R at this point
  int iterations = 0;             ///< SCBA iterations performed
  bool converged = false;         ///< did the point converge?
  double final_update = 0.0;      ///< last ||dSigma<||/||Sigma<||
};

/// Write the sweep summary CSV (one row per sweep point); returns its path.
std::string write_sweep_csv(const std::string& directory,
                            const Scenario& scenario,
                            const core::SimulationOptions& resolved,
                            const std::vector<SweepRow>& rows);

}  // namespace qtx::io
