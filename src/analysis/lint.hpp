#pragma once

/// \file lint.hpp
/// `qtx-lint` — the project-specific static-analysis pass. Walks the
/// `src/` tree under a repository root and enforces the invariants the
/// exascale claim rests on (see CONTRIBUTING.md "Invariants"): the
/// per-layer include DAG, the determinism rules (ordered reductions,
/// deterministic iteration feeding serialization, seeded RNG only), and
/// the concurrency/hygiene rules (`#pragma once`, `namespace qtx`, no
/// console writes in library code, no detached threads, no
/// volatile-as-synchronization).
///
/// Diagnostics follow the io layer's `<file>:<line>:` convention so a
/// violation in a 100-file tree is a one-glance fix. A finding can be
/// waived in place with a justification comment:
///
///     // qtx-lint: allow(<check-name>) — <why this is safe>
///
/// which applies to its own line (or the next line when the comment
/// stands alone).

#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/source.hpp"

namespace qtx::analysis {

/// One lint finding, formatted as `<file>:<line>: [<check>] <message>`.
struct Diagnostic {
  std::string file;     ///< lint-root-relative path, '/'-separated
  int line = 0;         ///< 1-based line number
  std::string check;    ///< the check name that fired (stable identifier)
  std::string message;  ///< what is wrong and how to fix or waive it
};

/// Name + one-line summary of a registered check (`qtx-lint --list-checks`).
struct CheckInfo {
  std::string name;     ///< stable kebab-case identifier
  std::string summary;  ///< one-line description of the enforced invariant
};

/// Options for one lint run.
struct LintOptions {
  /// Check names to run; empty = every registered check. Unknown names
  /// throw `LintUsageError`.
  std::vector<std::string> checks;
};

/// Result of one lint run over a tree.
struct LintReport {
  /// Findings in deterministic order (path, then line, then check).
  std::vector<Diagnostic> diagnostics;
  /// Checks that ran, in registry order.
  std::vector<std::string> checks_run;
  /// Number of files scanned.
  int files_scanned = 0;
  /// True when no check fired.
  bool clean() const { return diagnostics.empty(); }
};

/// A malformed request (unknown check name, missing `src/` under the
/// root) — the CLI maps this to exit code 2, distinct from "violations
/// found" (1).
class LintUsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Every registered check, in execution order.
std::vector<CheckInfo> lint_checks();

/// Run the configured checks over every `*.hpp` / `*.cpp` under
/// `<root>/src`, in sorted path order. Throws `LintUsageError` on unknown
/// check names or when `<root>/src` does not exist.
LintReport run_lint(const std::string& root, const LintOptions& opts = {});

/// Run the configured checks over already-loaded sources (the unit-test
/// seam behind `run_lint`).
LintReport run_lint_on(const std::vector<SourceFile>& files,
                       const LintOptions& opts = {});

/// `<file>:<line>: [<check>] <message>`.
std::string format_diagnostic(const Diagnostic& d);

/// Full human-readable report: one line per diagnostic plus a trailing
/// summary line (also what `qtx-lint --report <file>` writes).
std::string format_report(const LintReport& r);

}  // namespace qtx::analysis
