#pragma once

/// \file checks.hpp
/// Internal registry of the individual `qtx-lint` checks. Each check is a
/// pure function from one preprocessed `SourceFile` to diagnostics; the
/// driver (`lint.cpp`) owns file discovery, ordering, and suppression-free
/// formatting. New checks register here — see CONTRIBUTING.md
/// "Invariants" for the recipe.

#include <vector>

#include "analysis/lint.hpp"
#include "analysis/source.hpp"

namespace qtx::analysis {

/// One registered check: stable name, one-line summary, and the scan
/// function. The function must honor `SourceFile::line_allows` for every
/// diagnostic it emits.
struct Check {
  const char* name;     ///< stable kebab-case identifier
  const char* summary;  ///< one-line description of the enforced invariant
  void (*fn)(const SourceFile&, std::vector<Diagnostic>&);  ///< scanner
};

/// The full check registry, in execution order.
const std::vector<Check>& all_checks();

}  // namespace qtx::analysis
