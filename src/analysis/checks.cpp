#include "analysis/checks.hpp"

#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <string>

namespace qtx::analysis {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

void emit(const SourceFile& sf, int line, const char* check,
          std::string message, std::vector<Diagnostic>& out) {
  if (sf.line_allows(line, check)) return;
  out.push_back(Diagnostic{sf.path, line, check, std::move(message)});
}

/// The directive is detected on the stripped line (so commented-out
/// includes never count), but the path itself must come from the raw line
/// because the stripper blanks string-literal contents.
bool extract_include(const std::string& code_line, const std::string& raw_line,
                     std::string& path) {
  static const std::regex directive(R"(^\s*#\s*include\s*\")");
  if (!std::regex_search(code_line, directive)) return false;
  const auto open = raw_line.find('"');
  if (open == std::string::npos) return false;
  const auto close = raw_line.find('"', open + 1);
  if (close == std::string::npos) return false;
  path = raw_line.substr(open + 1, close - open - 1);
  return true;
}

// ---------------------------------------------------------------------------
// layering — the per-layer include DAG from CMakeLists.txt
// ---------------------------------------------------------------------------

/// Direct dependencies of each layer, mirroring the qtx_add_layer calls in
/// CMakeLists.txt. The lint closes this table transitively: a layer may
/// include itself, its deps, and everything its deps may include. Adding a
/// layer (or an edge) in CMake means updating this table — the fixture
/// test and the repo-wide `lint.repo` ctest case keep the two in sync.
const std::map<std::string, std::set<std::string>>& layer_deps() {
  static const std::map<std::string, std::set<std::string>> deps = {
      {"common", {}},
      {"obs", {"common"}},
      {"la", {"common", "obs"}},
      {"fft", {"common"}},
      {"par", {"common"}},
      {"analysis", {"common"}},
      {"accel", {"la"}},
      {"bsparse", {"la"}},
      {"obc", {"la"}},
      {"device", {"bsparse"}},
      {"rgf", {"bsparse"}},
      {"core", {"accel", "device", "fft", "obc", "par", "rgf", "obs"}},
      {"io", {"core"}},
      {"serve", {"io", "core", "par"}},
  };
  return deps;
}

/// Transitive closure of `layer_deps()` (includes the layer itself).
const std::map<std::string, std::set<std::string>>& layer_closure() {
  static const std::map<std::string, std::set<std::string>> closure = [] {
    std::map<std::string, std::set<std::string>> out;
    // Depth-first expansion; the graph is tiny and acyclic.
    for (const auto& [layer, _] : layer_deps()) {
      std::set<std::string>& reach = out[layer];
      std::vector<std::string> stack = {layer};
      while (!stack.empty()) {
        const std::string cur = stack.back();
        stack.pop_back();
        if (!reach.insert(cur).second) continue;
        const auto it = layer_deps().find(cur);
        if (it != layer_deps().end())
          for (const std::string& d : it->second) stack.push_back(d);
      }
    }
    return out;
  }();
  return closure;
}

void check_layering(const SourceFile& sf, std::vector<Diagnostic>& out) {
  if (sf.layer.empty()) return;
  const auto reach_it = layer_closure().find(sf.layer);
  if (reach_it == layer_closure().end()) return;  // unknown layer: no rules
  const std::set<std::string>& reach = reach_it->second;
  for (std::size_t li = 0; li < sf.code.size(); ++li) {
    std::string inc;
    if (!extract_include(sf.code[li], sf.raw[li], inc)) continue;
    const auto slash = inc.find('/');
    if (slash == std::string::npos) continue;  // system-style or flat path
    const std::string target = inc.substr(0, slash);
    if (layer_deps().count(target) == 0) continue;  // not a layer path
    if (reach.count(target)) continue;
    std::string allowed;
    for (const std::string& r : reach) {
      if (!allowed.empty()) allowed += ", ";
      allowed += r;
    }
    emit(sf, static_cast<int>(li + 1), "layering",
         "include edge " + sf.layer + " -> " + target +
             " violates the layer DAG ('" + inc + "'; " + sf.layer +
             " may include only: " + allowed +
             ") — add the dependency in CMakeLists.txt and "
             "src/analysis/checks.cpp together, or restructure",
         out);
  }
}

// ---------------------------------------------------------------------------
// raw-accumulate — determinism of floating-point folds in src/{par,core,accel}
// ---------------------------------------------------------------------------

/// Same-statement range-for fold: `for (... : ...) x += ...`.
bool is_range_for_fold(const std::string& line) {
  const auto f = line.find("for");
  if (f == std::string::npos) return false;
  // Token check: "for" must not be part of a longer identifier.
  const auto isw = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  if (f > 0 && isw(line[f - 1])) return false;
  if (f + 3 < line.size() && isw(line[f + 3])) return false;
  auto i = line.find('(', f);
  if (i == std::string::npos) return false;
  int depth = 0;
  bool has_colon = false;
  for (; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '(') ++depth;
    if (c == ')' && --depth == 0) break;
    if (c == ':' && depth == 1) {
      // "::" is scope resolution, not the range-for separator.
      const bool dbl = (i + 1 < line.size() && line[i + 1] == ':') ||
                       (i > 0 && line[i - 1] == ':');
      if (!dbl) has_colon = true;
    }
  }
  if (i == line.size() || !has_colon) return false;
  return line.find("+=", i) != std::string::npos;
}

/// Scalar fold over an energy index: `x += ...[e]...` where the
/// left-hand side is a plain (un-indexed) identifier — i.e. cross-energy
/// accumulation into a scalar, the pattern whose result depends on fold
/// order once energies run on the pipeline.
bool is_energy_index_fold(const std::string& line) {
  static const std::regex lhs_plus(R"(([A-Za-z_][A-Za-z_0-9]*)\s*\+=)");
  static const std::regex energy_index(R"(\[\s*i?e\s*\])");
  for (auto it = std::sregex_iterator(line.begin(), line.end(), lhs_plus);
       it != std::sregex_iterator(); ++it) {
    const auto pos = static_cast<std::size_t>(it->position(0));
    if (pos > 0) {
      const char before = line[pos - 1];
      if (before == ']' || before == ')' || before == '.' ||
          std::isalnum(static_cast<unsigned char>(before)) || before == '_')
        continue;  // indexed slot, call result, or member access — not a
                   // plain scalar accumulator
    }
    const std::string rhs = line.substr(pos + it->length(0));
    if (std::regex_search(rhs, energy_index)) return true;
  }
  return false;
}

void check_raw_accumulate(const SourceFile& sf,
                          std::vector<Diagnostic>& out) {
  if (sf.layer != "par" && sf.layer != "core" && sf.layer != "accel") return;
  for (std::size_t li = 0; li < sf.code.size(); ++li) {
    const std::string& line = sf.code[li];
    if (line.find("+=") == std::string::npos) continue;
    if (is_range_for_fold(line) || is_energy_index_fold(line)) {
      emit(sf, static_cast<int>(li + 1), "raw-accumulate",
           "raw '+=' fold over per-energy partials — route the reduction "
           "through common/reduction.hpp (ordered_sum) so it stays "
           "bit-identical across schedules, or waive a provably "
           "fixed-order fold with // qtx-lint: allow(raw-accumulate)",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// unordered-io — deterministic iteration feeding writers/serialization
// ---------------------------------------------------------------------------

void check_unordered_io(const SourceFile& sf, std::vector<Diagnostic>& out) {
  if (sf.layer != "io") return;
  for (std::size_t li = 0; li < sf.code.size(); ++li) {
    if (sf.code[li].find("std::unordered_") != std::string::npos) {
      emit(sf, static_cast<int>(li + 1), "unordered-io",
           "std::unordered_* in the io layer — iteration order is "
           "unspecified and would leak into writers/serialization; use "
           "std::map/std::set or sort before emitting",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// rng — all randomness flows through the seeded common/rng.hpp wrapper
// ---------------------------------------------------------------------------

void check_rng(const SourceFile& sf, std::vector<Diagnostic>& out) {
  if (sf.path == "src/common/rng.hpp") return;  // the one sanctioned home
  static const std::regex forbidden(
      R"(std::random_device|std::mt19937|std::default_random_engine)"
      R"(|std::minstd_rand|\bsrand\s*\(|\brand\s*\()");
  for (std::size_t li = 0; li < sf.code.size(); ++li) {
    if (std::regex_search(sf.code[li], forbidden)) {
      emit(sf, static_cast<int>(li + 1), "rng",
           "raw/unseeded RNG outside common/rng.hpp — construct a "
           "qtx::Rng with an explicit seed so every run is reproducible",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// pragma-once / namespace-qtx — header hygiene
// ---------------------------------------------------------------------------

void check_pragma_once(const SourceFile& sf, std::vector<Diagnostic>& out) {
  if (!sf.is_header) return;
  static const std::regex pragma(R"(^\s*#\s*pragma\s+once\b)");
  for (const std::string& line : sf.code)
    if (std::regex_search(line, pragma)) return;
  emit(sf, 1, "pragma-once",
       "header without #pragma once — every src/**/*.hpp must be "
       "double-include safe (the qtx_header_check target compiles each "
       "one twice)",
       out);
}

void check_namespace_qtx(const SourceFile& sf, std::vector<Diagnostic>& out) {
  if (!sf.is_header) return;
  if (!sf.has_non_preprocessor_code()) return;  // umbrella headers exempt
  static const std::regex ns(R"(namespace\s+qtx\b)");
  for (const std::string& line : sf.code)
    if (std::regex_search(line, ns)) return;
  emit(sf, 1, "namespace-qtx",
       "header declares symbols outside namespace qtx — every src header "
       "must wrap its declarations in namespace qtx (or a nested "
       "qtx::<layer>)",
       out);
}

// ---------------------------------------------------------------------------
// iostream — library code never writes to the console
// ---------------------------------------------------------------------------

void check_iostream(const SourceFile& sf, std::vector<Diagnostic>& out) {
  static const std::regex console(R"(std::(cout|cerr|clog)\b)");
  for (std::size_t li = 0; li < sf.code.size(); ++li) {
    if (std::regex_search(sf.code[li], console)) {
      emit(sf, static_cast<int>(li + 1), "iostream",
           "console write in library code — report through return "
           "values/exceptions/observers; only apps/, tests/, bench/, and "
           "examples/ own the console",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// thread-detach — every thread is joined, exceptions propagate
// ---------------------------------------------------------------------------

void check_thread_detach(const SourceFile& sf, std::vector<Diagnostic>& out) {
  static const std::regex detach(R"(\.\s*detach\s*\()");
  for (std::size_t li = 0; li < sf.code.size(); ++li) {
    if (std::regex_search(sf.code[li], detach)) {
      emit(sf, static_cast<int>(li + 1), "thread-detach",
           "detached thread — join every worker (see par::ThreadPool / "
           "par::CommWorld) so shutdown is deterministic and exceptions "
           "propagate",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// raw-clock — all timing flows through the instrumented entry points
// ---------------------------------------------------------------------------

void check_raw_clock(const SourceFile& sf, std::vector<Diagnostic>& out) {
  // Sanctioned homes: the timer primitives themselves and the obs layer's
  // trace clock (which needs raw monotonic microseconds for span stamps).
  if (sf.path == "src/common/timer.hpp") return;
  if (sf.path.rfind("src/obs/", 0) == 0) return;
  static const std::regex clock(
      R"(std::chrono::(steady_clock|system_clock|high_resolution_clock)\b)");
  for (std::size_t li = 0; li < sf.code.size(); ++li) {
    if (std::regex_search(sf.code[li], clock)) {
      emit(sf, static_cast<int>(li + 1), "raw-clock",
           "direct std::chrono clock use outside common/timer.hpp and "
           "src/obs — time through qtx::Stopwatch / qtx::ScopedTimer / "
           "qtx::monotonic_seconds so all timing flows through the "
           "instrumented entry points",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// volatile — not a synchronization primitive
// ---------------------------------------------------------------------------

void check_volatile(const SourceFile& sf, std::vector<Diagnostic>& out) {
  static const std::regex vol(R"(\bvolatile\b)");
  for (std::size_t li = 0; li < sf.code.size(); ++li) {
    if (std::regex_search(sf.code[li], vol)) {
      emit(sf, static_cast<int>(li + 1), "volatile",
           "'volatile' is not a synchronization primitive — use "
           "std::atomic or a mutex; waive a genuine optimizer sink with "
           "// qtx-lint: allow(volatile)",
           out);
    }
  }
}

}  // namespace

const std::vector<Check>& all_checks() {
  static const std::vector<Check> checks = {
      {"layering",
       "per-layer include DAG from CMakeLists.txt (common <- la <- "
       "bsparse/fft/par <- obc/rgf/device/accel <- core <- io)",
       &check_layering},
      {"raw-accumulate",
       "no raw floating-point '+=' folds over per-energy partials in "
       "src/{par,core,accel} — reductions go through common/reduction.hpp",
       &check_raw_accumulate},
      {"unordered-io",
       "no std::unordered_map/set in src/io — iteration order must never "
       "reach writers or serialization",
       &check_unordered_io},
      {"rng",
       "no rand()/std::random_device/raw engines outside common/rng.hpp — "
       "all randomness is explicitly seeded",
       &check_rng},
      {"pragma-once", "every src/**/*.hpp carries #pragma once",
       &check_pragma_once},
      {"namespace-qtx",
       "every declaring src header wraps its symbols in namespace qtx",
       &check_namespace_qtx},
      {"iostream",
       "no std::cout/cerr/clog in library code (apps/tests/bench/examples "
       "are exempt)",
       &check_iostream},
      {"thread-detach", "no std::thread::detach — workers are always joined",
       &check_thread_detach},
      {"raw-clock",
       "no direct std::chrono steady/system/high_resolution clock use "
       "outside common/timer.hpp and src/obs — timing flows through the "
       "instrumented qtx::Stopwatch/ScopedTimer/monotonic_seconds entry "
       "points",
       &check_raw_clock},
      {"volatile",
       "no volatile-as-synchronization — std::atomic or mutexes only",
       &check_volatile},
  };
  return checks;
}

}  // namespace qtx::analysis
