#include "analysis/source.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qtx::analysis {
namespace {

/// Split text into lines ('\n'-separated; a trailing newline does not add
/// an empty final line, matching how editors count lines).
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

/// Parse the check list out of one comment body if it carries a
/// `qtx-lint: allow(a, b)` annotation; empty set otherwise.
std::set<std::string> parse_allows(const std::string& comment) {
  std::set<std::string> out;
  const std::string marker = "qtx-lint:";
  const auto m = comment.find(marker);
  if (m == std::string::npos) return out;
  auto pos = comment.find("allow", m + marker.size());
  if (pos == std::string::npos) return out;
  pos = comment.find('(', pos);
  if (pos == std::string::npos) return out;
  const auto end = comment.find(')', pos);
  if (end == std::string::npos) return out;
  std::string name;
  for (auto i = pos + 1; i < end; ++i) {
    const char c = comment[i];
    if (c == ',') {
      if (!name.empty()) out.insert(name);
      name.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      name.push_back(c);
    }
  }
  if (!name.empty()) out.insert(name);
  return out;
}

/// True when the stripped line holds nothing but whitespace.
bool is_blank(const std::string& line) {
  for (const char c : line)
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  return true;
}

}  // namespace

bool SourceFile::has_non_preprocessor_code() const {
  for (const std::string& line : code) {
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i == line.size()) continue;
    if (line[i] == '#') continue;  // preprocessor directive
    return true;
  }
  return false;
}

SourceFile preprocess_source(const std::string& text,
                             const std::string& rel_path) {
  SourceFile sf;
  sf.path = rel_path;
  sf.is_header = rel_path.size() >= 4 &&
                 rel_path.compare(rel_path.size() - 4, 4, ".hpp") == 0;
  // Layer = first component under "src/".
  const std::string prefix = "src/";
  if (rel_path.compare(0, prefix.size(), prefix) == 0) {
    const auto slash = rel_path.find('/', prefix.size());
    if (slash != std::string::npos)
      sf.layer = rel_path.substr(prefix.size(), slash - prefix.size());
  }
  sf.raw = split_lines(text);
  sf.code.assign(sf.raw.size(), std::string());
  sf.allows.assign(sf.raw.size(), {});

  // One linear pass over the raw lines with cross-line lexer state. The
  // goal is not a full C++ lexer — just enough to blank what the checks
  // must never match: comment text and literal contents.
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;        // raw-string closing delimiter: )<tag>"
  std::string comment_buffer;   // accumulates block-comment text
  std::size_t comment_start = 0;  // 0-based line the open comment began on

  for (std::size_t li = 0; li < sf.raw.size(); ++li) {
    const std::string& in = sf.raw[li];
    std::string out;
    out.reserve(in.size());
    std::size_t i = 0;
    while (i < in.size()) {
      const char c = in[i];
      const char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            // Line comment: record a possible suppression, blank the rest.
            const std::set<std::string> names =
                parse_allows(in.substr(i + 2));
            // Attach to this line; the post-pass below moves annotations
            // on comment-only lines down to the next code-bearing line.
            sf.allows[li].insert(names.begin(), names.end());
            out.append(in.size() - i, ' ');
            i = in.size();
            break;
          }
          if (c == '/' && next == '*') {
            state = State::kBlockComment;
            comment_buffer.clear();
            comment_start = li;
            out.append(2, ' ');
            i += 2;
            break;
          }
          if (c == '"') {
            // Raw string literal? Look back for the R prefix.
            if (!out.empty() && out.back() == 'R') {
              const auto close = in.find('(', i + 1);
              if (close != std::string::npos) {
                raw_delim = ")";
                raw_delim.append(in, i + 1, close - i - 1);
                raw_delim.push_back('"');
                state = State::kRawString;
                out.append(close - i + 1, ' ');
                out[out.size() - (close - i + 1)] = '"';
                i = close + 1;
                break;
              }
            }
            state = State::kString;
            out.push_back('"');
            ++i;
            break;
          }
          if (c == '\'') {
            // A quote right after a digit is a C++14 digit separator
            // (1'000'000), not a character literal.
            if (!out.empty() &&
                std::isdigit(static_cast<unsigned char>(out.back()))) {
              out.push_back('\'');
              ++i;
              break;
            }
            state = State::kChar;
            out.push_back('\'');
            ++i;
            break;
          }
          out.push_back(c);
          ++i;
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            const std::set<std::string> names = parse_allows(comment_buffer);
            if (!names.empty())
              sf.allows[comment_start].insert(names.begin(), names.end());
            state = State::kCode;
            out.append(2, ' ');
            i += 2;
          } else {
            comment_buffer.push_back(c);
            out.push_back(' ');
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\' && next != '\0') {
            out.append(2, ' ');
            i += 2;
          } else if (c == '"') {
            state = State::kCode;
            out.push_back('"');
            ++i;
          } else {
            out.push_back(' ');
            ++i;
          }
          break;
        case State::kChar:
          if (c == '\\' && next != '\0') {
            out.append(2, ' ');
            i += 2;
          } else if (c == '\'') {
            state = State::kCode;
            out.push_back('\'');
            ++i;
          } else {
            out.push_back(' ');
            ++i;
          }
          break;
        case State::kRawString: {
          const auto close = in.find(raw_delim, i);
          if (close == std::string::npos) {
            out.append(in.size() - i, ' ');
            i = in.size();
          } else {
            out.append(close - i, ' ');
            out.push_back('"');
            out.append(raw_delim.size() - 1, ' ');
            i = close + raw_delim.size();
            state = State::kCode;
          }
          break;
        }
      }
    }
    // Unterminated string/char literal at end of line: plain (non-raw)
    // literals cannot span lines — recover so one bad line does not blind
    // the checks for the rest of the file.
    if (state == State::kString || state == State::kChar)
      state = State::kCode;
    sf.code[li] = out;
  }

  // Post-pass: a suppression on a comment-only line governs the next line
  // that carries code, so multi-line justification comments work:
  //
  //     // qtx-lint: allow(volatile) — optimizer sink,
  //     // not synchronization.
  //     volatile double sink = 0.0;
  for (std::size_t li = sf.raw.size(); li-- > 0;) {
    if (sf.allows[li].empty() || !is_blank(sf.code[li])) continue;
    for (std::size_t j = li + 1; j < sf.raw.size(); ++j) {
      if (is_blank(sf.code[j])) continue;
      sf.allows[j].insert(sf.allows[li].begin(), sf.allows[li].end());
      break;
    }
  }
  return sf;
}

SourceFile load_source_file(const std::string& abs_path,
                            const std::string& rel_path) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in)
    throw std::runtime_error("qtx-lint: cannot read '" + abs_path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return preprocess_source(ss.str(), rel_path);
}

}  // namespace qtx::analysis
