#include "analysis/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "analysis/checks.hpp"

namespace qtx::analysis {
namespace fs = std::filesystem;

namespace {

/// Resolve the requested check subset against the registry (empty = all).
std::vector<const Check*> resolve_checks(const LintOptions& opts) {
  std::vector<const Check*> run;
  if (opts.checks.empty()) {
    for (const Check& c : all_checks()) run.push_back(&c);
    return run;
  }
  for (const std::string& name : opts.checks) {
    const Check* found = nullptr;
    for (const Check& c : all_checks())
      if (name == c.name) found = &c;
    if (found == nullptr) {
      std::string known;
      for (const Check& c : all_checks()) {
        if (!known.empty()) known += ", ";
        known += c.name;
      }
      throw LintUsageError("qtx-lint: unknown check '" + name +
                           "' (known checks: " + known + ")");
    }
    run.push_back(found);
  }
  return run;
}

}  // namespace

std::vector<CheckInfo> lint_checks() {
  std::vector<CheckInfo> out;
  for (const Check& c : all_checks())
    out.push_back(CheckInfo{c.name, c.summary});
  return out;
}

LintReport run_lint_on(const std::vector<SourceFile>& files,
                       const LintOptions& opts) {
  const std::vector<const Check*> run = resolve_checks(opts);
  LintReport report;
  for (const Check* c : run) report.checks_run.push_back(c->name);
  report.files_scanned = static_cast<int>(files.size());
  for (const SourceFile& sf : files)
    for (const Check* c : run) c->fn(sf, report.diagnostics);
  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
  return report;
}

LintReport run_lint(const std::string& root, const LintOptions& opts) {
  resolve_checks(opts);  // surface unknown-check errors before any io
  const fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec))
    throw LintUsageError("qtx-lint: no src/ directory under root '" + root +
                         "'");
  // Deterministic order: collect, then sort by the relative path the
  // diagnostics will carry.
  std::vector<std::pair<std::string, std::string>> paths;  // rel, abs
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    const std::string rel =
        fs::relative(entry.path(), fs::path(root)).generic_string();
    paths.emplace_back(rel, entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const auto& [rel, abs] : paths)
    files.push_back(load_source_file(abs, rel));
  return run_lint_on(files, opts);
}

std::string format_diagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ":" << d.line << ": [" << d.check << "] " << d.message;
  return os.str();
}

std::string format_report(const LintReport& r) {
  std::ostringstream os;
  for (const Diagnostic& d : r.diagnostics)
    os << format_diagnostic(d) << "\n";
  os << "qtx-lint: " << r.diagnostics.size() << " violation"
     << (r.diagnostics.size() == 1 ? "" : "s") << " across "
     << r.files_scanned << " files (" << r.checks_run.size()
     << " checks)\n";
  return os.str();
}

}  // namespace qtx::analysis
