#pragma once

/// \file source.hpp
/// Source-file model for the `qtx-lint` static-analysis pass: loads a file,
/// blanks comments and string/character-literal contents (so checks never
/// fire on text that the compiler ignores or that is data, not code), and
/// collects `qtx-lint: allow(<check>, ...)` suppression annotations from
/// the comments before they are blanked.

#include <set>
#include <string>
#include <vector>

namespace qtx::analysis {

/// One repo file prepared for linting. Lines are 1-based everywhere a line
/// number crosses the public API — matching the `<file>:<line>` diagnostic
/// convention of the io layer.
struct SourceFile {
  /// Path relative to the lint root, '/'-separated (diagnostic label).
  std::string path;
  /// First path component under `src/` ("core", "la", ...); the key the
  /// layering rules are expressed in.
  std::string layer;
  /// True for `.hpp` files (header-only rules key off this).
  bool is_header = false;
  /// The file verbatim, split into lines.
  std::vector<std::string> raw;
  /// Same lines with comments and string/char-literal *contents* replaced
  /// by spaces — what every textual check matches against. Always the same
  /// size as `raw`.
  std::vector<std::string> code;
  /// Per-line suppressed check names (same size as `raw`); entry i holds
  /// the checks allowed on line i+1. A `qtx-lint: allow(...)` comment
  /// applies to its own line, or to the next line when it stands alone.
  std::vector<std::set<std::string>> allows;

  /// True when \p check is suppressed on 1-based \p line.
  bool line_allows(int line, const std::string& check) const {
    const auto idx = static_cast<std::size_t>(line - 1);
    return idx < allows.size() && allows[idx].count(check) > 0;
  }

  /// True when the stripped file contains any code beyond blank lines and
  /// preprocessor directives (umbrella headers that only `#include` are
  /// exempt from the namespace rule).
  bool has_non_preprocessor_code() const;
};

/// Load and preprocess one file. \p abs_path is read from disk; \p rel_path
/// becomes `SourceFile::path` and seeds `layer` / `is_header`. Throws
/// `std::runtime_error` when the file cannot be read.
SourceFile load_source_file(const std::string& abs_path,
                            const std::string& rel_path);

/// Preprocess in-memory text (the unit-test seam behind
/// `load_source_file`): strips comments/literals into `code`, extracts
/// suppressions into `allows`.
SourceFile preprocess_source(const std::string& text,
                             const std::string& rel_path);

}  // namespace qtx::analysis
