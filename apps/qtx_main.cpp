// qtx — the scenario-driven command-line driver of the NEGF+GW transport
// stack. Wraps the library layers (io/scenario_parser, io/scenario_runner,
// io/result_writer, serve/server) behind its subcommands; every tutorial in
// docs/ drives this binary.
//
//   qtx run    <scenario.ini> [--out DIR] [--threads N] [--ranks N]
//              [--rank-timeout SECONDS] [--trace FILE] [--metrics FILE]
//              [--set k=v]... [--quiet]
//   qtx sweep  <scenario.ini> [--out DIR] [--threads N] [--set k=v]... [--quiet]
//   qtx print  <scenario.ini> [--set k=v]...  # parse + validate, emit canonical
//   qtx serve  --socket PATH [--workers N] [--queue N] [--cache-mb MB]
//              [--request-timeout SECONDS] [--quiet]   # long-lived daemon
//   qtx submit <scenario.ini> --socket PATH [--set k=v]... | --shutdown
//              | --stats
//   qtx list-backends             # the StageRegistry catalog, generated
//   qtx list-presets              # the device catalog (src/device/presets)
//   qtx --help | --version
//
// Exit codes: 0 success, 1 scenario/runtime error, 2 usage error.

#include <csignal>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.hpp"
#include "io/scenario_runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

constexpr const char* kVersion = "qtx 0.1.0 (quatrex-cpp)";

constexpr const char* kUsage =
    "qtx — scenario-driven NEGF+GW quantum-transport driver\n"
    "\n"
    "usage:\n"
    "  qtx run   <scenario.ini> [--out DIR] [--threads N] [--ranks N]\n"
    "            [--rank-timeout SECONDS] [--trace FILE] [--metrics FILE]\n"
    "            [--set KEY=VALUE]... [--quiet]\n"
    "  qtx sweep <scenario.ini> [--out DIR] [--threads N] [--set KEY=VALUE]"
    "... [--quiet]\n"
    "  qtx print <scenario.ini> [--set KEY=VALUE]...\n"
    "  qtx serve --socket PATH [--workers N] [--queue N] [--cache-mb MB]\n"
    "            [--request-timeout SECONDS] [--quiet]\n"
    "  qtx submit <scenario.ini> --socket PATH [--set KEY=VALUE]... "
    "[--quiet]\n"
    "  qtx submit --socket PATH --shutdown | --stats\n"
    "  qtx list-backends\n"
    "  qtx list-presets\n"
    "  qtx --help | --version\n"
    "\n"
    "run            solve one scenario and write CSV/JSON results\n"
    "sweep          iterate the scenario's [sweep] values (bias,\n"
    "               temperature, or any solver option key)\n"
    "print          parse + validate, then print the canonical scenario\n"
    "serve          long-lived daemon: accept decks on an AF_UNIX socket,\n"
    "               reuse warm pipelines and cached results across\n"
    "               requests; SIGTERM (or submit --shutdown) drains\n"
    "               gracefully\n"
    "submit         send a deck to a running qtx serve and print the\n"
    "               results.json reply (bit-identical to a cold qtx run)\n"
    "list-backends  print every registered stage backend key\n"
    "list-presets   print the device scenario catalog\n"
    "\n"
    "--out DIR      override the scenario's [output] directory\n"
    "--threads N    override the scenario's solver num_threads\n"
    "--ranks N      (run only) fork N worker processes and shard the\n"
    "               energy grid over them via the \"socket\" comm backend;\n"
    "               rank 0 writes the output files, bit-identical to a\n"
    "               sequential run\n"
    "--rank-timeout SECONDS  kill and reap the workers if the ranked run\n"
    "               exceeds this wall-clock budget (default 300)\n"
    "--trace FILE   (run only) record an execution trace and write it as\n"
    "               Chrome/Perfetto trace-event JSON (open in\n"
    "               https://ui.perfetto.dev or chrome://tracing); with\n"
    "               --ranks N the per-rank traces are merged into FILE\n"
    "--metrics FILE (run only) write the process metrics snapshot after\n"
    "               the run — counters, gauges, and histograms under the\n"
    "               qtx.* namespace; \".prom\" suffix selects Prometheus\n"
    "               text format, anything else JSON\n"
    "--set KEY=VALUE  override any [solver] or [device] deck key without\n"
    "               editing the file (repeatable; device keys take a\n"
    "               \"device.\" prefix, e.g. --set device.num_cells=8\n"
    "               --set mixer=anderson)\n"
    "--quiet        suppress per-iteration progress lines\n"
    "--socket PATH  (serve/submit) AF_UNIX socket path of the daemon\n"
    "--workers N    (serve) solver worker threads (default 1)\n"
    "--queue N      (serve) pending-request capacity before new requests\n"
    "               are answered with a queue-full error (default 16)\n"
    "--cache-mb MB  (serve) result-cache byte budget in MiB; 0 disables\n"
    "               caching (default 64)\n"
    "--request-timeout SECONDS  (serve) max queue wait before a request\n"
    "               is answered with a timeout error (default 300)\n"
    "--shutdown     (submit) ask the daemon to drain and exit instead of\n"
    "               submitting a deck\n"
    "--stats        (submit) scrape the daemon's live metrics snapshot\n"
    "               (JSON) without submitting a deck; answered without\n"
    "               queueing behind in-flight requests\n"
    "\n"
    "Scenario-file schema and tutorials: docs/userguide.md, docs/tutorials/.\n";

struct CliArgs {
  std::string command;
  std::string scenario_path;
  std::string out_dir;
  int threads = 0;  ///< 0 = keep the scenario's value
  int ranks = 0;    ///< 0 = in-process run; N > 0 forks N workers
  double rank_timeout = 300.0;  ///< seconds before a ranked run is killed
  bool quiet = false;
  std::string socket_path;        ///< serve/submit: AF_UNIX socket path
  int workers = 1;                ///< serve: solver worker threads
  int queue = 16;                 ///< serve: pending-request capacity
  double cache_mb = 64.0;         ///< serve: result-cache budget in MiB
  double request_timeout = 300.0; ///< serve: max queue wait in seconds
  bool shutdown = false;          ///< submit: drain the daemon instead
  bool stats = false;             ///< submit: scrape the daemon's metrics
  std::string trace_path;         ///< run: Chrome trace JSON output path
  std::string metrics_path;       ///< run: metrics snapshot output path
  /// --set KEY=VALUE deck overrides, in command-line order.
  std::vector<std::pair<std::string, std::string>> sets;
};

int usage_error(const std::string& message) {
  std::fprintf(stderr, "qtx: %s\n\n%s", message.c_str(), kUsage);
  return 2;
}

bool parse_cli(int argc, char** argv, CliArgs& args, int& exit_code) {
  if (argc < 2) {
    exit_code = usage_error("missing command");
    return false;
  }
  args.command = argv[1];
  if (args.command == "--help" || args.command == "-h" ||
      args.command == "help") {
    std::printf("%s", kUsage);
    exit_code = 0;
    return false;
  }
  if (args.command == "--version") {
    std::printf("%s\n", kVersion);
    exit_code = 0;
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (++i >= argc) {
        exit_code = usage_error("--out needs a directory argument");
        return false;
      }
      args.out_dir = argv[i];
    } else if (arg == "--threads") {
      if (++i >= argc) {
        exit_code = usage_error("--threads needs a worker count");
        return false;
      }
      try {
        args.threads = qtx::strings::parse_int32(argv[i]);
      } catch (const std::runtime_error& e) {
        exit_code = usage_error(std::string("--threads: ") + e.what());
        return false;
      }
      if (args.threads < 1) {
        exit_code = usage_error("--threads needs a positive worker count");
        return false;
      }
    } else if (arg == "--ranks") {
      if (++i >= argc) {
        exit_code = usage_error("--ranks needs a process count");
        return false;
      }
      try {
        args.ranks = qtx::strings::parse_int32(argv[i]);
      } catch (const std::runtime_error& e) {
        exit_code = usage_error(std::string("--ranks: ") + e.what());
        return false;
      }
      if (args.ranks < 1) {
        exit_code = usage_error("--ranks needs a positive process count");
        return false;
      }
    } else if (arg == "--rank-timeout") {
      if (++i >= argc) {
        exit_code = usage_error("--rank-timeout needs a seconds argument");
        return false;
      }
      try {
        args.rank_timeout = qtx::strings::parse_double(argv[i]);
      } catch (const std::runtime_error& e) {
        exit_code = usage_error(std::string("--rank-timeout: ") + e.what());
        return false;
      }
      if (!(args.rank_timeout > 0.0)) {
        exit_code = usage_error("--rank-timeout needs a positive duration");
        return false;
      }
    } else if (arg == "--set") {
      if (++i >= argc) {
        exit_code = usage_error("--set needs a KEY=VALUE argument");
        return false;
      }
      const std::string kv = argv[i];
      const std::size_t eq = kv.find('=');
      if (eq == 0 || eq == std::string::npos) {
        exit_code = usage_error("--set expects KEY=VALUE, got \"" + kv +
                                "\"");
        return false;
      }
      args.sets.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (arg == "--socket") {
      if (++i >= argc) {
        exit_code = usage_error("--socket needs a path argument");
        return false;
      }
      args.socket_path = argv[i];
    } else if (arg == "--workers") {
      if (++i >= argc) {
        exit_code = usage_error("--workers needs a thread count");
        return false;
      }
      try {
        args.workers = qtx::strings::parse_int32(argv[i]);
      } catch (const std::runtime_error& e) {
        exit_code = usage_error(std::string("--workers: ") + e.what());
        return false;
      }
      if (args.workers < 1) {
        exit_code = usage_error("--workers needs a positive thread count");
        return false;
      }
    } else if (arg == "--queue") {
      if (++i >= argc) {
        exit_code = usage_error("--queue needs a capacity argument");
        return false;
      }
      try {
        args.queue = qtx::strings::parse_int32(argv[i]);
      } catch (const std::runtime_error& e) {
        exit_code = usage_error(std::string("--queue: ") + e.what());
        return false;
      }
      if (args.queue < 1) {
        exit_code = usage_error("--queue needs a positive capacity");
        return false;
      }
    } else if (arg == "--cache-mb") {
      if (++i >= argc) {
        exit_code = usage_error("--cache-mb needs a MiB argument");
        return false;
      }
      try {
        args.cache_mb = qtx::strings::parse_double(argv[i]);
      } catch (const std::runtime_error& e) {
        exit_code = usage_error(std::string("--cache-mb: ") + e.what());
        return false;
      }
      if (args.cache_mb < 0.0) {
        exit_code = usage_error("--cache-mb cannot be negative");
        return false;
      }
    } else if (arg == "--request-timeout") {
      if (++i >= argc) {
        exit_code =
            usage_error("--request-timeout needs a seconds argument");
        return false;
      }
      try {
        args.request_timeout = qtx::strings::parse_double(argv[i]);
      } catch (const std::runtime_error& e) {
        exit_code =
            usage_error(std::string("--request-timeout: ") + e.what());
        return false;
      }
      if (!(args.request_timeout > 0.0)) {
        exit_code =
            usage_error("--request-timeout needs a positive duration");
        return false;
      }
    } else if (arg == "--shutdown") {
      args.shutdown = true;
    } else if (arg == "--stats") {
      args.stats = true;
    } else if (arg == "--trace") {
      if (++i >= argc) {
        exit_code = usage_error("--trace needs an output file argument");
        return false;
      }
      args.trace_path = argv[i];
    } else if (arg == "--metrics") {
      if (++i >= argc) {
        exit_code = usage_error("--metrics needs an output file argument");
        return false;
      }
      args.metrics_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      exit_code = usage_error("unknown flag \"" + arg + "\"");
      return false;
    } else if (args.scenario_path.empty()) {
      args.scenario_path = arg;
    } else {
      exit_code = usage_error("unexpected argument \"" + arg + "\"");
      return false;
    }
  }
  return true;
}

qtx::io::Scenario load_scenario(const CliArgs& args) {
  if (args.scenario_path.empty()) {
    throw qtx::io::ScenarioError("command \"" + args.command +
                                 "\" needs a scenario file argument");
  }
  qtx::io::Scenario s = qtx::io::parse_scenario_file(args.scenario_path);
  // Deck overrides first (command-line order), then the dedicated flags —
  // so --threads still wins over a conflicting --set num_threads=...
  for (const auto& [key, value] : args.sets)
    qtx::io::apply_scenario_override(s, key, value);
  if (!args.out_dir.empty()) s.output.directory = args.out_dir;
  if (args.threads > 0) s.solver.num_threads = args.threads;
  return s;
}

qtx::io::ProgressFn progress_printer(bool quiet) {
  if (quiet) return nullptr;
  return [](const qtx::core::IterationResult& it) {
    std::printf("  iter %2d: |dSigma|/|Sigma| = %.3e  (%.2f s)\n",
                it.iteration, it.sigma_update, it.seconds);
    std::fflush(stdout);
  };
}

int cmd_run(const CliArgs& args) {
  const qtx::io::Scenario s = load_scenario(args);
  if (!args.quiet)
    std::printf("scenario \"%s\": device preset \"%s\", %d cells x %d "
                "orbitals, %d energy points\n",
                s.name.c_str(), s.device_preset.c_str(),
                s.device.num_cells, s.device.orbitals_per_puc * s.device.nu,
                s.solver.grid.n);
  if (args.ranks > 0) {
    // Multi-process path: fork the workers over the socket transport.
    // Rank 0 writes the usual files; the parent only supervises, so the
    // summary here is the launch report, not in-process observables.
    // Tracing/metrics are handled inside the workers (per-rank trace
    // partials merged after the launch; see run_scenario_ranked).
    const qtx::io::RankedOutcome ranked = qtx::io::run_scenario_ranked(
        s, args.ranks, args.rank_timeout, qtx::core::StageRegistry::global(),
        progress_printer(args.quiet), args.trace_path, args.metrics_path);
    if (!ranked.launch.ok()) {
      std::fprintf(stderr, "qtx: ranked run failed: %s\n",
                   ranked.launch.diagnostic.c_str());
      return ranked.launch.exit_code != 0 ? ranked.launch.exit_code : 1;
    }
    std::printf("ranked run complete: %d worker process%s\n", ranked.ranks,
                ranked.ranks == 1 ? "" : "es");
    if (!s.output.directory.empty())
      std::printf("rank 0 wrote results under %s\n",
                  s.output.directory.c_str());
    else
      std::printf("(no output directory configured; use --out DIR or the "
                  "[output] section)\n");
    if (!args.trace_path.empty())
      std::printf("wrote %s (merged %d rank trace%s)\n",
                  args.trace_path.c_str(), ranked.ranks,
                  ranked.ranks == 1 ? "" : "s");
    if (!args.metrics_path.empty())
      std::printf("wrote %s\n", args.metrics_path.c_str());
    return 0;
  }
  if (!args.trace_path.empty()) {
    // Full detail for an explicitly requested trace: stage spans and the
    // per-kernel la spans. Off (the default) costs one atomic load per
    // would-be span.
    qtx::obs::set_tracing_enabled(true);
    qtx::obs::set_kernel_tracing_enabled(true);
  }
  const qtx::io::RunOutcome out = qtx::io::run_scenario(
      s, qtx::core::StageRegistry::global(), progress_printer(args.quiet));
  const qtx::core::TransportResult& res = out.results.result;
  std::printf("%s after %d iteration%s (final update %.3e)\n",
              qtx::core::to_string(res.stop_reason), res.iterations,
              res.iterations == 1 ? "" : "s", res.final_update);
  std::printf("I_L = %.6e, I_R = %.6e (e/hbar per spin)\n",
              out.results.terminal_left, out.results.terminal_right);
  for (const std::string& f : out.files)
    std::printf("wrote %s\n", f.c_str());
  if (out.files.empty())
    std::printf("(no output directory configured; use --out DIR or the "
                "[output] section)\n");
  if (!args.trace_path.empty()) {
    qtx::obs::write_chrome_trace(args.trace_path);
    std::printf("wrote %s\n", args.trace_path.c_str());
  }
  if (!args.metrics_path.empty()) {
    qtx::obs::write_metrics(args.metrics_path);
    std::printf("wrote %s\n", args.metrics_path.c_str());
  }
  return 0;
}

int cmd_sweep(const CliArgs& args) {
  const qtx::io::Scenario s = load_scenario(args);
  if (!s.has_sweep()) {
    throw qtx::io::ScenarioError(
        "scenario \"" + s.name + "\" has no [sweep] section; add one or "
        "use \"qtx run\" (see docs/userguide.md, \"Sweep mode\")");
  }
  if (!args.quiet)
    std::printf("sweep \"%s\" over %zu values of \"%s\"\n", s.name.c_str(),
                s.sweep.values.size(), s.sweep.parameter.c_str());
  const qtx::io::SweepOutcome out = qtx::io::run_sweep(
      s, qtx::core::StageRegistry::global(), progress_printer(args.quiet));
  std::printf("%-14s %16s %16s %6s %10s\n", s.sweep.parameter.c_str(),
              "I_L", "I_R", "iters", "converged");
  for (const qtx::io::SweepRow& r : out.rows)
    std::printf("%-14.6g %16.6e %16.6e %6d %10s\n", r.value,
                r.terminal_left, r.terminal_right, r.iterations,
                r.converged ? "yes" : "no");
  std::printf("(energy pipeline built %d time%s for %zu points)\n",
              out.pipeline_builds, out.pipeline_builds == 1 ? "" : "s",
              out.rows.size());
  for (const std::string& f : out.files)
    std::printf("wrote %s\n", f.c_str());
  return 0;
}

int cmd_print(const CliArgs& args) {
  const qtx::io::Scenario s = load_scenario(args);
  // Validate the physics before echoing, so "qtx print" doubles as a
  // scenario linter (same checks a run would perform, minus the solve).
  const qtx::device::Structure structure = qtx::io::make_structure(s);
  qtx::io::resolved_solver_options(s, structure).validate(
      structure.num_cells());
  std::printf("%s", qtx::io::serialize_scenario(s).c_str());
  return 0;
}

/// The server a signal handler must reach. Only one `qtx serve` runs per
/// process, and Server::request_stop() is async-signal-safe (a single
/// write(2) to its stop pipe), so a plain pointer handoff is enough.
qtx::serve::Server* g_serve_server = nullptr;

extern "C" void serve_signal_handler(int) {
  if (g_serve_server != nullptr) g_serve_server->request_stop();
}

int cmd_serve(const CliArgs& args) {
  if (args.socket_path.empty())
    return usage_error("\"qtx serve\" needs --socket PATH");
  qtx::serve::ServerOptions opt;
  opt.socket_path = args.socket_path;
  opt.workers = args.workers;
  opt.queue_capacity = args.queue;
  opt.cache_bytes =
      static_cast<std::size_t>(args.cache_mb * (1024.0 * 1024.0));
  opt.request_timeout_s = args.request_timeout;

  qtx::serve::Server server(opt);
  server.start();
  g_serve_server = &server;
  std::signal(SIGTERM, serve_signal_handler);
  std::signal(SIGINT, serve_signal_handler);
  if (!args.quiet) {
    std::printf("qtx serve: listening on %s (%d worker%s, queue %d, "
                "cache %.0f MiB)\n",
                opt.socket_path.c_str(), opt.workers,
                opt.workers == 1 ? "" : "s", opt.queue_capacity,
                args.cache_mb);
    std::printf("qtx serve: stop with SIGTERM or \"qtx submit --socket %s "
                "--shutdown\"\n",
                opt.socket_path.c_str());
    std::fflush(stdout);
  }
  server.wait();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_serve_server = nullptr;
  const qtx::serve::ServerStats stats = server.stats();
  if (!args.quiet) {
    std::printf("qtx serve: drained — %llu request%s ok, %llu error%s; "
                "cache %llu hit%s / %llu miss%s; pipeline pool %llu warm "
                "/ %llu cold\n",
                static_cast<unsigned long long>(stats.requests_ok),
                stats.requests_ok == 1 ? "" : "s",
                static_cast<unsigned long long>(stats.requests_error),
                stats.requests_error == 1 ? "" : "s",
                static_cast<unsigned long long>(stats.cache.hits),
                stats.cache.hits == 1 ? "" : "s",
                static_cast<unsigned long long>(stats.cache.misses),
                stats.cache.misses == 1 ? "" : "es",
                static_cast<unsigned long long>(stats.pool.warm_hits),
                static_cast<unsigned long long>(stats.pool.cold_builds));
  }
  return 0;
}

int cmd_submit(const CliArgs& args) {
  if (args.socket_path.empty())
    return usage_error("\"qtx submit\" needs --socket PATH");
  qtx::serve::Client client(args.socket_path);
  if (args.stats) {
    const qtx::serve::Client::Response reply = client.stats();
    if (!reply.ok) {
      std::fprintf(stderr, "qtx: serve error: %s\n", reply.error.c_str());
      return 1;
    }
    std::fwrite(reply.payload.data(), 1, reply.payload.size(), stdout);
    return 0;
  }
  if (args.shutdown) {
    if (client.shutdown()) {
      if (!args.quiet)
        std::printf("qtx submit: server at %s acknowledged shutdown\n",
                    args.socket_path.c_str());
    } else if (!args.quiet) {
      std::printf("qtx submit: nothing listening at %s (already down)\n",
                  args.socket_path.c_str());
    }
    return 0;
  }
  if (args.scenario_path.empty())
    return usage_error("\"qtx submit\" needs a scenario file (or "
                       "--shutdown)");
  std::ifstream in(args.scenario_path, std::ios::binary);
  if (!in) {
    throw qtx::io::ScenarioError("cannot open scenario file \"" +
                                 args.scenario_path + "\"");
  }
  std::ostringstream deck;
  deck << in.rdbuf();
  const qtx::serve::Client::Response reply =
      client.submit(deck.str(), args.scenario_path, args.sets);
  if (!reply.ok) {
    std::fprintf(stderr, "qtx: serve error: %s\n", reply.error.c_str());
    return 1;
  }
  std::fwrite(reply.payload.data(), 1, reply.payload.size(), stdout);
  return 0;
}

int cmd_list_backends() {
  const auto backends = qtx::core::StageRegistry::global().describe();
  std::printf("%-10s %-20s %s\n", "kind", "key", "description");
  std::printf("%-10s %-20s %s\n", "----", "---", "-----------");
  for (const qtx::core::BackendDescription& b : backends)
    std::printf("%-10s %-20s %s\n", b.kind.c_str(), b.key.c_str(),
                b.description.c_str());
  return 0;
}

int cmd_list_presets() {
  std::printf("%-18s %s\n", "preset", "description");
  std::printf("%-18s %s\n", "------", "-----------");
  for (const qtx::device::DevicePreset& p : qtx::device::device_presets())
    std::printf("%-18s %s\n", p.name.c_str(), p.description.c_str());
  std::printf("\nOverride any parameter per-key in the scenario's [device] "
              "section (keys: ");
  const auto keys = qtx::device::structure_param_keys();
  for (std::size_t i = 0; i < keys.size(); ++i)
    std::printf("%s%s", i ? ", " : "", keys[i].c_str());
  std::printf(").\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  int exit_code = 0;
  if (!parse_cli(argc, argv, args, exit_code)) return exit_code;
  if (args.ranks > 0 && args.command != "run")
    return usage_error("--ranks is only valid with \"qtx run\"");
  if (!args.socket_path.empty() && args.command != "serve" &&
      args.command != "submit")
    return usage_error(
        "--socket is only valid with \"qtx serve\" or \"qtx submit\"");
  if (args.shutdown && args.command != "submit")
    return usage_error("--shutdown is only valid with \"qtx submit\"");
  if (args.stats && args.command != "submit")
    return usage_error("--stats is only valid with \"qtx submit\"");
  if (args.stats && args.shutdown)
    return usage_error("--stats and --shutdown are mutually exclusive");
  if (!args.trace_path.empty() && args.command != "run")
    return usage_error("--trace is only valid with \"qtx run\"");
  if (!args.metrics_path.empty() && args.command != "run")
    return usage_error("--metrics is only valid with \"qtx run\"");
  try {
    if (args.command == "run") return cmd_run(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "print") return cmd_print(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "submit") return cmd_submit(args);
    if (args.command == "list-backends") return cmd_list_backends();
    if (args.command == "list-presets") return cmd_list_presets();
    return usage_error("unknown command \"" + args.command + "\"");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qtx: error: %s\n", e.what());
    return 1;
  }
}
