// qtx-lint — project-specific static analysis for the qtx source tree.
//
//   qtx-lint [--root <dir>] [--check <name>]... [--report <file>]
//   qtx-lint --list-checks
//
// Walks <root>/src (default: the current directory) and enforces the
// project invariants documented in CONTRIBUTING.md "Invariants": the
// per-layer include DAG, the determinism rules, and the concurrency /
// hygiene rules. Exit codes: 0 = clean, 1 = violations found, 2 = usage
// error (unknown flag or check name, missing src/ under the root).

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"

namespace {

constexpr const char* kUsage =
    "usage: qtx-lint [--root <dir>] [--check <name>]... [--report <file>]\n"
    "       qtx-lint --list-checks\n"
    "\n"
    "  --root <dir>     repository root to scan (<root>/src; default: .)\n"
    "  --check <name>   run only the named check (repeatable; default: all)\n"
    "  --report <file>  additionally write the report to <file>\n"
    "  --list-checks    print every registered check and exit\n"
    "\n"
    "exit codes: 0 clean, 1 violations found, 2 usage error\n";

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string report_path;
  qtx::analysis::LintOptions opts;
  bool list_checks = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto need_value = [&](const char* flag) -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "qtx-lint: " << flag << " needs a value\n" << kUsage;
        std::exit(2);
      }
      return args[++i];
    };
    if (a == "--root") {
      root = need_value("--root");
    } else if (a == "--check") {
      opts.checks.push_back(need_value("--check"));
    } else if (a == "--report") {
      report_path = need_value("--report");
    } else if (a == "--list-checks") {
      list_checks = true;
    } else if (a == "--help" || a == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "qtx-lint: unknown argument '" << a << "'\n" << kUsage;
      return 2;
    }
  }

  if (list_checks) {
    for (const auto& c : qtx::analysis::lint_checks())
      std::cout << c.name << "\n    " << c.summary << "\n";
    return 0;
  }

  try {
    const qtx::analysis::LintReport report =
        qtx::analysis::run_lint(root, opts);
    const std::string text = qtx::analysis::format_report(report);
    std::cout << text;
    if (!report_path.empty()) {
      std::ofstream out(report_path);
      if (!out) {
        std::cerr << "qtx-lint: cannot write report to '" << report_path
                  << "'\n";
        return 2;
      }
      out << text;
    }
    return report.clean() ? 0 : 1;
  } catch (const qtx::analysis::LintUsageError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "qtx-lint: " << e.what() << "\n";
    return 2;
  }
}
