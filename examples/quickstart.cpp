// Quickstart: build a synthetic silicon-like nanowire device, run the
// NEGF+scGW SCBA loop to convergence through the qtx::core::Simulation
// facade, and print the observables the paper's §4.5 lists: DOS, charge
// density, spectral current, and terminal current.
//
//   ./quickstart

#include <cstdio>

#include "core/observables.hpp"
#include "core/simulation.hpp"

int main() {
  using namespace qtx;

  // 1. Device: 4 transport cells of 2 primitive cells x 8 orbitals, with a
  //    ~0.6 eV dimerization gap (see device::StructureParams for knobs).
  const device::Structure structure = device::make_test_structure(4);
  const auto gap = structure.band_gap();
  std::printf("device: %d cells x %d orbitals, gap %.3f eV (Ev %.3f, Ec %.3f)\n",
              structure.num_cells(), structure.block_size(), gap.gap(),
              gap.valence_max, gap.conduction_min);

  // 2. Solver: energy grid, contacts (n-type, 0.2 V bias), GW on. Backends
  //    are selected by registry key; per-iteration results stream through
  //    the observer instead of being materialized by run().
  core::Simulation sim =
      core::SimulationBuilder(structure)
          .grid(-6.0, 6.0, 64)
          .eta(0.02)
          .contacts(gap.conduction_min + 0.3, gap.conduction_min + 0.1)
          .gw(0.3)  // scaled-down e-e interaction for fast convergence
          .mixing(0.4)
          .max_iterations(8)
          .tolerance(1e-3)
          .obc_backend("memoized")  // paper §5.3; "beyn" / "lyapunov" also work
          .greens_backend("rgf")    // or "nested-dissection"
          .on_iteration([](const core::IterationResult& it) {
            std::printf("  SCBA iter %d: |dSigma|/|Sigma| = %.3e  (%.2f s)\n",
                        it.iteration, it.sigma_update, it.seconds);
          })
          .build();

  // 3. Run the self-consistent Born loop.
  const core::TransportResult res = sim.run();
  std::printf("converged: %s after %d iterations\n",
              res.converged ? "yes" : "no", res.iterations);

  // 4. Observables.
  const auto dos = core::total_dos(sim);
  const auto density = core::electron_density(sim);
  const auto spectral = core::spectral_current_left(sim);
  const auto& grid = sim.options().grid;
  std::printf("\n%8s %12s %14s\n", "E [eV]", "DOS", "I_spectral");
  for (int e = 0; e < grid.n; e += 4)
    std::printf("%8.2f %12.4f %14.6e\n", grid.energy(e), dos[e], spectral[e]);
  std::printf("\nelectron density per cell:");
  for (const double n : density) std::printf(" %.4f", n);
  std::printf("\nterminal current I_L = %.6e (e/hbar per spin)\n",
              core::terminal_current_left(sim));
  std::printf("memoizer: %lld direct, %lld memoized OBC solves\n",
              static_cast<long long>(sim.memoizer_stats().direct_calls),
              static_cast<long long>(sim.memoizer_stats().memoized_calls));
  return 0;
}
