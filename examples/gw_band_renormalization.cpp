// GW band-structure renormalization (paper §4.5): compare the synthetic
// "DFT" bands with the quasiparticle bands corrected by the converged GW
// self-energy. The exchange-correlation correction shifts the band edges —
// the band-gap renormalization that motivates GW on top of DFT (§3).
//
//   ./gw_band_renormalization

#include <cstdio>

#include "core/observables.hpp"
#include "core/simulation.hpp"

int main() {
  using namespace qtx;

  const device::Structure structure = device::make_test_structure(4);
  const auto gap = structure.band_gap();

  core::Simulation sim =
      core::SimulationBuilder(structure)
          .grid(-6.0, 6.0, 64)
          .eta(0.02)
          .contacts(gap.midgap(), gap.midgap())  // equilibrium, intrinsic
          .gw(0.4)
          .mixing(0.4)
          .max_iterations(8)
          .tolerance(1e-3)
          .build();
  const core::TransportResult res = sim.run();
  std::printf("# SCBA stopped after %d iterations (%s)\n", res.iterations,
              core::to_string(res.stop_reason));

  const auto bands = core::band_renormalization(sim, 25);
  const int m = structure.orbitals_per_puc();
  const int nv = m / 2;
  std::printf("# k, valence/conduction band edges: bare vs GW-corrected\n");
  std::printf("%8s %10s %10s %10s %10s\n", "k", "Ev(DFT)", "Ec(DFT)",
              "Ev(GW)", "Ec(GW)");
  for (size_t ik = 0; ik < bands.k.size(); ik += 2)
    std::printf("%8.3f %10.4f %10.4f %10.4f %10.4f\n", bands.k[ik],
                bands.bare[ik][nv - 1], bands.bare[ik][nv],
                bands.corrected[ik][nv - 1], bands.corrected[ik][nv]);
  std::printf("\nband gap: DFT-like %.4f eV -> GW %.4f eV (shift %+.4f eV)\n",
              bands.bare_gap, bands.corrected_gap,
              bands.corrected_gap - bands.bare_gap);
  return 0;
}
