// Nanoribbon FET I-V characteristics — the device study the paper's
// introduction motivates (Fig. 1): a gated channel between doped contacts,
// swept over gate voltage, comparing the ballistic limit with the
// NEGF+scGW solution. The GW run shows the qualitative effects the paper
// targets: gap renormalization and lifetime broadening that soften the
// turn-on characteristics of ultra-scaled devices.
//
//   ./nanoribbon_iv

#include <cstdio>

#include "core/observables.hpp"
#include "core/scba.hpp"

int main() {
  using namespace qtx;

  // A 6-cell "nanoribbon": source (2 cells) - gated channel (2) - drain (2).
  const device::Structure structure = device::make_test_structure(6);
  const auto gap = structure.band_gap();

  core::ScbaOptions base;
  base.grid = core::EnergyGrid{-6.0, 6.0, 48};
  base.eta = 0.02;
  base.contacts.mu_left = gap.conduction_min + 0.25;   // doped source
  base.contacts.mu_right = gap.conduction_min - 0.05;  // V_DS = 0.3 V
  base.mixing = 0.4;
  base.max_iterations = 6;
  base.tol = 1e-3;

  std::printf("# NRFET transfer characteristic (V_DS = 0.30 V)\n");
  std::printf("%10s %16s %16s %10s\n", "V_G [V]", "I_ballistic", "I_GW",
              "I_GW/I_bal");
  for (double vg = 0.0; vg <= 0.81; vg += 0.2) {
    // The gate shifts the channel cells; 0.8 V barrier at V_G = 0.
    const double barrier = 0.8 - vg;
    core::ScbaOptions opt = base;
    opt.cell_potential = {0.0, 0.0, barrier, barrier, 0.0, 0.0};

    opt.gw_scale = 0.0;
    core::Scba ballistic(structure, opt);
    ballistic.run();
    const double i_bal = core::terminal_current_left(ballistic);

    opt.gw_scale = 0.3;
    opt.fock_scale = 0.0;  // isolate the dissipative (lifetime) effect
    core::Scba gw(structure, opt);
    gw.run();
    const double i_gw = core::terminal_current_left(gw);

    std::printf("%10.2f %16.6e %16.6e %10.3f\n", vg, i_bal, i_gw,
                (i_bal != 0.0) ? i_gw / i_bal : 0.0);
  }
  std::printf("\n# Columns: gate voltage, ballistic current, NEGF+GW current"
              " (e/hbar per spin), ratio.\n");
  return 0;
}
