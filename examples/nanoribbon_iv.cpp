// Nanoribbon FET I-V characteristics — the device study the paper's
// introduction motivates (Fig. 1): a gated channel between doped contacts,
// swept over gate voltage, comparing the ballistic limit with the
// NEGF+scGW solution. The GW run shows the qualitative effects the paper
// targets: gap renormalization and lifetime broadening that soften the
// turn-on characteristics of ultra-scaled devices.
//
// The sweep forks one SimulationBuilder per scenario: the base configuration
// is copied, the gate potential applied, and the interaction channel
// switched per run — no option struct plumbing.
//
//   ./nanoribbon_iv

#include <cstdio>

#include "core/observables.hpp"
#include "core/simulation.hpp"

int main() {
  using namespace qtx;

  // A 6-cell "nanoribbon": source (2 cells) - gated channel (2) - drain (2).
  const device::Structure structure = device::make_test_structure(6);
  const auto gap = structure.band_gap();

  const core::SimulationBuilder base =
      core::SimulationBuilder(structure)
          .grid(-6.0, 6.0, 48)
          .eta(0.02)
          .contacts(gap.conduction_min + 0.25,   // doped source
                    gap.conduction_min - 0.05)   // V_DS = 0.3 V
          .mixing(0.4)
          .max_iterations(6)
          .tolerance(1e-3);

  std::printf("# NRFET transfer characteristic (V_DS = 0.30 V)\n");
  std::printf("%10s %16s %16s %10s\n", "V_G [V]", "I_ballistic", "I_GW",
              "I_GW/I_bal");
  for (double vg = 0.0; vg <= 0.81; vg += 0.2) {
    // The gate shifts the channel cells; 0.8 V barrier at V_G = 0.
    const double barrier = 0.8 - vg;
    const std::vector<double> phi = {0.0, 0.0, barrier, barrier, 0.0, 0.0};

    core::Simulation ballistic =
        core::SimulationBuilder(base).cell_potential(phi).ballistic().build();
    ballistic.run();
    const double i_bal = core::terminal_current_left(ballistic);

    core::Simulation gw = core::SimulationBuilder(base)
                              .cell_potential(phi)
                              .gw(0.3, 0.0)  // isolate the lifetime effect
                              .build();
    gw.run();
    const double i_gw = core::terminal_current_left(gw);

    std::printf("%10.2f %16.6e %16.6e %10.3f\n", vg, i_bal, i_gw,
                (i_bal != 0.0) ? i_gw / i_bal : 0.0);
  }
  std::printf("\n# Columns: gate voltage, ballistic current, NEGF+GW current"
              " (e/hbar per spin), ratio.\n");
  return 0;
}
