// Compatibility check for the deprecated `qtx::core::Scba` shim: the
// pre-facade quickstart, verbatim. This target is built by ci.sh with
// -Werror minus -Wdeprecated-declarations to prove the legacy API keeps
// compiling (and running) alongside the Simulation facade for one release.
//
//   ./scba_compat

#include <cstdio>

#include "core/observables.hpp"
#include "core/scba.hpp"

int main() {
  using namespace qtx;

  const device::Structure structure = device::make_test_structure(4);
  const auto gap = structure.band_gap();

  // Old-style flat options; ScbaOptions is now an alias of
  // SimulationOptions, so validation and backend keys work here too.
  core::ScbaOptions opt;
  opt.grid = core::EnergyGrid{-6.0, 6.0, 64};
  opt.eta = 0.02;
  opt.contacts.mu_left = gap.conduction_min + 0.3;
  opt.contacts.mu_right = gap.conduction_min + 0.1;
  opt.gw_scale = 0.3;
  opt.mixing = 0.4;
  opt.max_iterations = 8;
  opt.tol = 1e-3;

  core::Scba scba(structure, opt);
  const std::vector<core::IterationResult> history = scba.run();
  for (const auto& it : history)
    std::printf("  SCBA iter %d: |dSigma|/|Sigma| = %.3e\n", it.iteration,
                it.sigma_update);
  // The final IterationResult now records why the loop stopped.
  std::printf("converged: %s after %d iterations (stop: %s)\n",
              scba.converged() ? "yes" : "no", scba.iteration(),
              core::to_string(history.back().stop));
  std::printf("terminal current I_L = %.6e (e/hbar per spin)\n",
              core::terminal_current_left(scba));
  return 0;
}
