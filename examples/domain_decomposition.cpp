// Spatial domain decomposition demo (paper §5.4): solve the same selected
// quadratic problem with the sequential RGF and the nested-dissection solver
// at several partition counts, verify they agree, and report the fill-in
// workload imbalance between boundary and middle partitions (Table 5's
// "boundary partitions perform about 60% of the middle partitions'
// workload").
//
// A final section drives the same comparison through the Simulation facade,
// switching the Green's-function stage by registry key ("rgf" vs
// "nested-dissection") at runtime.
//
//   ./domain_decomposition

#include <cstdio>

#include "common/flops.hpp"
#include "common/timer.hpp"
#include "core/observables.hpp"
#include "core/simulation.hpp"
#include "device/structure.hpp"
#include "rgf/nested_dissection.hpp"

int main() {
  using namespace qtx;

  // A long device so the partitioning has room: 24 transport cells.
  device::StructureParams params;
  params.num_cells = 24;
  params.orbitals_per_puc = 8;
  params.nu = 2;
  params.nu_h = 2;
  const device::Structure structure{params};
  const auto h = structure.hamiltonian_bt();

  // A physically shaped problem: eM at one energy, anti-Hermitian RHS.
  const int nb = h.num_blocks(), bs = h.block_size();
  bt::BlockTridiag m(nb, bs);
  for (int i = 0; i < nb; ++i) {
    m.diag(i) = la::Matrix::identity(bs) * cplx(0.5, 0.05);
    m.diag(i) -= h.diag(i);
  }
  for (int i = 0; i + 1 < nb; ++i) {
    m.upper(i) = h.upper(i) * cplx(-1.0);
    m.lower(i) = h.lower(i) * cplx(-1.0);
  }
  Rng rng(7);
  bt::BlockTridiag bl = bt::BlockTridiag::random_diag_dominant(nb, bs, rng);
  bt::BlockTridiag bg = bt::BlockTridiag::random_diag_dominant(nb, bs, rng);
  bl.anti_hermitize();
  bg.anti_hermitize();

  const rgf::SelectedSolution seq = rgf::rgf_solve(m, bl, bg);
  std::printf("sequential RGF: %d blocks of %d\n\n", nb, bs);
  std::printf("%4s %12s %14s %12s %s\n", "P_S", "max|dX|", "reduced Gflop",
              "time [ms]", "per-partition Gflop (top..bottom)");
  for (const int ps : {2, 3, 4, 6}) {
    rgf::NdOptions opt;
    opt.num_partitions = ps;
    opt.num_threads = ps;
    qtx::Stopwatch sw;
    const rgf::NdSolution nd = rgf::nd_solve(m, bl, bg, opt);
    const double ms = sw.seconds() * 1e3;
    const double err = std::max(
        bt::max_abs_diff(nd.sel.xl, seq.xl),
        std::max(bt::max_abs_diff(nd.sel.xr, seq.xr),
                 bt::max_abs_diff(nd.sel.xg, seq.xg)));
    std::printf("%4d %12.2e %14.3f %12.2f ", ps, err,
                nd.reduced_flops / 1e9, ms);
    for (const auto& p : nd.stats) std::printf(" %7.3f", p.flops / 1e9);
    std::printf("\n");
  }
  std::printf(
      "\nMiddle partitions carry the fill-in overhead (orange blocks of the\n"
      "paper's Fig. 5); the boundary/middle workload ratio reproduces the\n"
      "~0.6 imbalance reported in Table 5.\n");

  // The same decomposition inside the full SCBA pipeline: select the
  // Green's-function stage by registry key and verify the physics agrees.
  std::printf("\n=== Simulation facade: greens_backend key selection ===\n");
  const auto gap = structure.band_gap();
  const core::SimulationBuilder base =
      core::SimulationBuilder(structure)
          .grid(-6.0, 6.0, 24)
          .eta(0.05)
          .contacts(gap.conduction_min + 0.3, gap.conduction_min + 0.1)
          .gw(0.25)
          .max_iterations(2)
          .tolerance(1e-6);
  core::Simulation seq_sim =
      core::SimulationBuilder(base).greens_backend("rgf").build();
  seq_sim.run();
  const double i_seq = core::terminal_current_left(seq_sim);
  std::printf("%-20s %14s %16s\n", "greens_backend", "P_S", "I_L");
  std::printf("%-20s %14d %16.6e\n", "rgf", 1, i_seq);
  for (const int ps : {2, 4}) {
    core::Simulation nd_sim =
        core::SimulationBuilder(base).nested_dissection(ps, ps).build();
    nd_sim.run();
    std::printf("%-20s %14d %16.6e\n", "nested-dissection", ps,
                core::terminal_current_left(nd_sim));
  }
  std::printf("(currents agree to solver roundoff across backends)\n");
  return 0;
}
